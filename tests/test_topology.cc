/**
 * @file
 * Tests for the multi-core topology backend (DESIGN.md §16): topology
 * construction validation (A-code family), deterministic routing,
 * fingerprints, --topology spec parsing, the qubit-partitioning pass
 * and the topology-aware movement-phase cost model.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/qubit_mapping.hh"
#include "arch/location.hh"
#include "arch/multi_simd.hh"
#include "arch/schedule.hh"
#include "arch/topology.hh"
#include "ir/program.hh"
#include "passes/qubit_mapping_pass.hh"
#include "sched/comm.hh"
#include "sched/core_affinity.hh"
#include "sched/rcp.hh"
#include "support/diagnostic.hh"
#include "support/logging.hh"

namespace {

using namespace msq;

Topology
multiCoreTopo(unsigned cores, unsigned regionsPerCore,
              TopologyShape shape = TopologyShape::Ring)
{
    Topology topo;
    topo.cores = cores;
    topo.regionsPerCore = regionsPerCore;
    topo.shape = shape;
    return topo;
}

TEST(Topology, DefaultIsFlatMachine)
{
    Topology topo;
    EXPECT_FALSE(topo.multiCore());
    EXPECT_TRUE(topo.edges().empty());
    EXPECT_EQ(topo.fingerprint(), "");
    EXPECT_EQ(topo.describe(), "");
    EXPECT_TRUE(topo.validate());
    EXPECT_EQ(topo.coreOfRegion(0), 0u);
    EXPECT_EQ(topo.coreOfRegion(17), 0u);
}

// A001: a machine with no cores cannot exist.
TEST(Topology, ValidateRejectsZeroCores)
{
    Topology topo;
    topo.cores = 0;
    DiagnosticEngine diags;
    EXPECT_FALSE(topo.validate(&diags));
    EXPECT_TRUE(diags.has(DiagCode::ArchNoCores));
}

// A002: a zero-bandwidth link can never carry a teleport.
TEST(Topology, ValidateRejectsZeroLinkBandwidth)
{
    Topology topo = multiCoreTopo(2, 1);
    topo.linkBandwidth = 0;
    DiagnosticEngine diags;
    EXPECT_FALSE(topo.validate(&diags));
    EXPECT_TRUE(diags.has(DiagCode::ArchZeroLinkBandwidth));
}

// A003: multiple cores with no links between them cannot route.
TEST(Topology, ValidateRejectsDisconnectedEdgelessGraph)
{
    Topology topo = multiCoreTopo(3, 1, TopologyShape::SingleCore);
    DiagnosticEngine diags;
    EXPECT_FALSE(topo.validate(&diags));
    EXPECT_TRUE(diags.has(DiagCode::ArchDisconnectedTopology));
}

// A003 also fires for an extra link naming a core that does not exist.
TEST(Topology, ValidateRejectsOutOfRangeLink)
{
    Topology topo = multiCoreTopo(2, 1);
    topo.extraLinks.push_back({0, 9});
    DiagnosticEngine diags;
    EXPECT_FALSE(topo.validate(&diags));
    EXPECT_TRUE(diags.has(DiagCode::ArchDisconnectedTopology));
}

// A004: a core linked to itself is a construction error.
TEST(Topology, ValidateRejectsSelfLoopLink)
{
    Topology topo = multiCoreTopo(2, 1);
    topo.extraLinks.push_back({1, 1});
    DiagnosticEngine diags;
    EXPECT_FALSE(topo.validate(&diags));
    EXPECT_TRUE(diags.has(DiagCode::ArchSelfLoopLink));
}

// A005: a multi-core machine must say how its regions split.
TEST(Topology, ValidateRejectsMissingRegionSplit)
{
    Topology topo = multiCoreTopo(4, 0);
    DiagnosticEngine diags;
    EXPECT_FALSE(topo.validate(&diags));
    EXPECT_TRUE(diags.has(DiagCode::ArchNoRegionSplit));
}

// Without a DiagnosticEngine the construction contract is fatal(),
// exactly like MultiSimdArch::validate.
TEST(Topology, ValidateWithoutEngineThrows)
{
    Topology topo;
    topo.cores = 0;
    EXPECT_THROW(topo.validate(), FatalError);
}

TEST(Topology, EdgesAreCanonicalAndShapeCorrect)
{
    // Ring of 4: a cycle, each pair ascending, list sorted.
    Topology ring = multiCoreTopo(4, 2);
    std::vector<std::pair<unsigned, unsigned>> want_ring{
        {0, 1}, {0, 3}, {1, 2}, {2, 3}};
    EXPECT_EQ(ring.edges(), want_ring);

    // Ring of 2 degenerates to a single link, not a doubled one.
    EXPECT_EQ(multiCoreTopo(2, 1).edges().size(), 1u);

    // 2x2 mesh: 4 edges. All-to-all of 4: 6 edges.
    EXPECT_EQ(multiCoreTopo(4, 1, TopologyShape::Mesh).edges().size(),
              4u);
    EXPECT_EQ(
        multiCoreTopo(4, 1, TopologyShape::AllToAll).edges().size(),
        6u);

    // Extra links are normalized and deduplicated into the list.
    Topology chord = multiCoreTopo(4, 1);
    chord.extraLinks.push_back({2, 0}); // descending on purpose
    chord.extraLinks.push_back({0, 1}); // duplicate of a ring edge
    std::vector<std::pair<unsigned, unsigned>> want_chord{
        {0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}};
    EXPECT_EQ(chord.edges(), want_chord);
    EXPECT_TRUE(chord.validate());
}

TEST(Topology, CoreOfRegionGeometry)
{
    Topology topo = multiCoreTopo(4, 2);
    EXPECT_EQ(topo.coreOfRegion(0), 0u);
    EXPECT_EQ(topo.coreOfRegion(1), 0u);
    EXPECT_EQ(topo.coreOfRegion(2), 1u);
    EXPECT_EQ(topo.coreOfRegion(7), 3u);
    // Regions past the split clamp to the last core instead of
    // inventing cores that do not exist.
    EXPECT_EQ(topo.coreOfRegion(100), 3u);
}

TEST(Topology, FingerprintAndDescribe)
{
    Topology topo = multiCoreTopo(4, 2);
    topo.linkBandwidth = 1;
    topo.linkLatency = 3;
    EXPECT_EQ(topo.fingerprint(),
              "topo=ring:4x2|lbw=1|llat=3|map=greedy");
    EXPECT_EQ(topo.describe(), "ring(4x2, link-bw=1, link-lat=3)");

    topo.mapping = MappingStrategy::RoundRobin;
    EXPECT_EQ(topo.fingerprint(),
              "topo=ring:4x2|lbw=1|llat=3|map=roundrobin");

    // Extra links are part of the cache key, in canonical order
    // regardless of the order they were specified in.
    Topology with_links = multiCoreTopo(4, 2);
    with_links.linkBandwidth = 1;
    with_links.linkLatency = 3;
    with_links.extraLinks.push_back({2, 0});
    with_links.extraLinks.push_back({1, 3});
    EXPECT_EQ(with_links.fingerprint(),
              "topo=ring:4x2|lbw=1|llat=3|map=greedy|links=0-2.1-3");
}

TEST(TopologyRouter, ShortestPathsAreDeterministic)
{
    Topology ring = multiCoreTopo(4, 1);
    TopologyRouter router(ring);
    EXPECT_EQ(router.dist(0, 0), 0u);
    EXPECT_EQ(router.dist(0, 1), 1u);
    EXPECT_EQ(router.dist(0, 2), 2u);
    EXPECT_EQ(router.dist(3, 1), 2u);

    // The canonical route 0 -> 2 goes through core 1 (the
    // lexicographically-least shortest path), never through core 3.
    std::vector<unsigned> route;
    router.routeEdges(0, 2, route);
    ASSERT_EQ(route.size(), 2u);
    EXPECT_EQ(router.edges()[route[0]], std::make_pair(0u, 1u));
    EXPECT_EQ(router.edges()[route[1]], std::make_pair(1u, 2u));

    // routeEdges appends: callers own clearing.
    router.routeEdges(0, 1, route);
    EXPECT_EQ(route.size(), 3u);

    // All-to-all: every pair one hop apart.
    TopologyRouter full(multiCoreTopo(4, 1, TopologyShape::AllToAll));
    for (unsigned a = 0; a < 4; ++a)
        for (unsigned b = 0; b < 4; ++b)
            EXPECT_EQ(full.dist(a, b), a == b ? 0u : 1u);

    // 2x3 mesh: opposite corners are 3 hops apart.
    TopologyRouter mesh(multiCoreTopo(6, 1, TopologyShape::Mesh));
    EXPECT_EQ(mesh.dist(0, 5), 3u);
}

TEST(ParseTopologySpec, GoodSpecConfiguresArch)
{
    MultiSimdArch arch;
    std::string error;
    ASSERT_TRUE(parseTopologySpec(
        "cores=4,k=2,shape=ring,link-bw=1,link-lat=3,map=roundrobin",
        arch, error))
        << error;
    EXPECT_EQ(arch.k, 8u); // machine total = cores * per-core k
    EXPECT_EQ(arch.topology.cores, 4u);
    EXPECT_EQ(arch.topology.regionsPerCore, 2u);
    EXPECT_EQ(arch.topology.shape, TopologyShape::Ring);
    EXPECT_EQ(arch.topology.linkBandwidth, 1u);
    EXPECT_EQ(arch.topology.linkLatency, 3u);
    EXPECT_EQ(arch.topology.mapping, MappingStrategy::RoundRobin);
}

TEST(ParseTopologySpec, DefaultsAndSingleCore)
{
    // cores=1 collapses to the flat machine whatever else is set.
    MultiSimdArch arch;
    std::string error;
    ASSERT_TRUE(parseTopologySpec("cores=1,k=6", arch, error)) << error;
    EXPECT_EQ(arch.k, 6u);
    EXPECT_FALSE(arch.topology.multiCore());
    EXPECT_EQ(arch.fingerprint(), MultiSimdArch(6).fingerprint());

    // cores>1 without shape defaults to a ring; omitted k keeps the
    // arch's k as the per-core tile size.
    MultiSimdArch arch2(4);
    ASSERT_TRUE(parseTopologySpec("cores=2", arch2, error)) << error;
    EXPECT_EQ(arch2.topology.shape, TopologyShape::Ring);
    EXPECT_EQ(arch2.topology.regionsPerCore, 4u);
    EXPECT_EQ(arch2.k, 8u);
}

TEST(ParseTopologySpec, ExtraLinks)
{
    MultiSimdArch arch;
    std::string error;
    ASSERT_TRUE(parseTopologySpec("cores=4,k=1,link=0-2,link=1-3",
                                  arch, error))
        << error;
    ASSERT_EQ(arch.topology.extraLinks.size(), 2u);
    EXPECT_EQ(arch.topology.extraLinks[0], std::make_pair(0u, 2u));
    EXPECT_EQ(arch.topology.edges().size(), 6u); // ring(4) + 2 chords
}

TEST(ParseTopologySpec, BadSpecsRejected)
{
    const char *bad[] = {
        "nonsense",                 // not key=value
        "cores=0",                  // A001 at validation
        "cores=4,k=2,link-bw=0",    // A002
        "cores=4,k=2,shape=single", // A003 (edgeless multi-core)
        "cores=4,k=2,link=1-1",     // A004 self-loop
        "cores=4,k=2,link=0-z",     // malformed link pair
        "cores=4,k=2,link=07",      // no dash
        "cores=two",                // non-numeric count
        "cores=4,k=0",              // zero per-core regions
        "shape=torus",              // unknown shape
        "map=random",               // unknown strategy
        "cores=4,k=2,link-lat=0",   // zero-latency link
        "frobnicate=1",             // unknown key
    };
    for (const char *spec : bad) {
        MultiSimdArch arch;
        std::string error;
        EXPECT_FALSE(parseTopologySpec(spec, arch, error))
            << "spec accepted: " << spec;
        EXPECT_FALSE(error.empty()) << spec;
    }
}

// --- qubit mapping -----------------------------------------------------

/** Two 3-qubit cliques joined by a single weak edge. */
Module
twoClusterModule()
{
    Module mod("clusters");
    auto reg = mod.addRegister("q", 6);
    for (int rep = 0; rep < 4; ++rep) {
        mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
        mod.addGate(GateKind::CNOT, {reg[1], reg[2]});
        mod.addGate(GateKind::CNOT, {reg[0], reg[2]});
        mod.addGate(GateKind::CNOT, {reg[3], reg[4]});
        mod.addGate(GateKind::CNOT, {reg[4], reg[5]});
        mod.addGate(GateKind::CNOT, {reg[3], reg[5]});
    }
    mod.addGate(GateKind::CNOT, {reg[2], reg[3]}); // weak bridge
    return mod;
}

TEST(QubitMapping, InteractionGraphCountsSharedOperands)
{
    Module mod = twoClusterModule();
    QubitInteractionGraph graph(mod);
    EXPECT_EQ(graph.numQubits(), 6u);
    EXPECT_EQ(graph.weight(0, 1), 4u);
    EXPECT_EQ(graph.weight(1, 0), 4u);
    EXPECT_EQ(graph.weight(2, 3), 1u);
    EXPECT_EQ(graph.weight(0, 5), 0u);
    EXPECT_EQ(graph.totalWeight(0), 8u);
    EXPECT_EQ(graph.totalWeight(2), 9u); // 4 + 4 + bridge
}

TEST(QubitMapping, GreedyKeepsClustersTogether)
{
    Module mod = twoClusterModule();
    Topology topo = multiCoreTopo(2, 2);
    std::vector<unsigned> mapping = computeQubitMapping(mod, topo);
    ASSERT_EQ(mapping.size(), 6u);
    // Each clique lands on one core; only the bridge edge is cut.
    EXPECT_EQ(mapping[0], mapping[1]);
    EXPECT_EQ(mapping[1], mapping[2]);
    EXPECT_EQ(mapping[3], mapping[4]);
    EXPECT_EQ(mapping[4], mapping[5]);
    EXPECT_NE(mapping[0], mapping[3]);
    EXPECT_EQ(mappingCutWeight(mod, mapping), 1u);

    // Round-robin scatters both cliques across the cores.
    Topology rr = topo;
    rr.mapping = MappingStrategy::RoundRobin;
    std::vector<unsigned> naive = computeQubitMapping(mod, rr);
    for (unsigned q = 0; q < 6; ++q)
        EXPECT_EQ(naive[q], q % 2);
    EXPECT_GT(mappingCutWeight(mod, naive),
              mappingCutWeight(mod, mapping));
}

TEST(QubitMapping, DeterministicAcrossCalls)
{
    Module mod = twoClusterModule();
    Topology topo = multiCoreTopo(4, 1);
    std::vector<unsigned> first = computeQubitMapping(mod, topo);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(computeQubitMapping(mod, topo), first);
}

TEST(QubitMapping, SingleCoreMapsEverythingToZero)
{
    Module mod = twoClusterModule();
    std::vector<unsigned> mapping =
        computeQubitMapping(mod, Topology{});
    for (unsigned core : mapping)
        EXPECT_EQ(core, 0u);
}

TEST(QubitMappingPass, ReportsPerLeafCuts)
{
    Program prog;
    ModuleId main_id = prog.addModule("main");
    Module &main_mod = prog.module(main_id);
    auto reg = main_mod.addRegister("q", 6);
    for (int rep = 0; rep < 4; ++rep) {
        main_mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
        main_mod.addGate(GateKind::CNOT, {reg[1], reg[2]});
        main_mod.addGate(GateKind::CNOT, {reg[0], reg[2]});
        main_mod.addGate(GateKind::CNOT, {reg[3], reg[4]});
        main_mod.addGate(GateKind::CNOT, {reg[4], reg[5]});
        main_mod.addGate(GateKind::CNOT, {reg[3], reg[5]});
    }
    main_mod.addGate(GateKind::CNOT, {reg[2], reg[3]});
    prog.setEntry(main_id);

    QubitMappingPass pass(multiCoreTopo(2, 2));
    pass.run(prog);
    ASSERT_EQ(pass.reports().size(), 1u);
    const auto &report = pass.reports()[0];
    EXPECT_EQ(report.module, "main");
    EXPECT_EQ(report.totalWeight, 25u); // 6 clique edges * 4 + bridge
    EXPECT_EQ(report.cutWeight, 1u);
    EXPECT_GT(report.roundRobinCutWeight, report.cutWeight);

    // On the flat machine the pass is a no-op.
    QubitMappingPass flat(Topology{});
    flat.run(prog);
    EXPECT_TRUE(flat.reports().empty());
}

// --- movement-phase cost model -----------------------------------------

TEST(MovePhaseCostModel, FlatMachineMatchesMovePhaseCycles)
{
    MultiSimdArch arch = MultiSimdArch(4).withEprBandwidth(2);
    MovePhaseCostModel model(arch);

    std::vector<Move> moves;
    auto check = [&] {
        EXPECT_EQ(model.cycles(moves.data(),
                               moves.data() + moves.size()),
                  movePhaseCycles(moves.data(),
                                  moves.data() + moves.size(),
                                  arch.eprBandwidth));
    };
    check();
    moves.push_back({0, Location::global(), Location::inRegion(0),
                     false});
    check();
    moves.push_back({1, Location::inRegion(0), Location::inLocalMem(0),
                     false});
    check();
    for (QubitId q = 2; q < 7; ++q) {
        moves.push_back({q, Location::global(), Location::inRegion(1),
                         true});
        check();
    }
}

TEST(MovePhaseCostModel, InterCoreRoutesOverLinks)
{
    MultiSimdArch arch;
    std::string error;
    ASSERT_TRUE(parseTopologySpec(
        "cores=4,k=1,shape=ring,link-bw=1,link-lat=3", arch, error))
        << error;
    MovePhaseCostModel model(arch);

    // Region 0 (core 0) -> region 2 (core 2): 2 hops on the ring.
    Move two_hops{0, Location::inRegion(0), Location::inRegion(2),
                  true};
    EXPECT_TRUE(model.interCore(two_hops));
    EXPECT_EQ(model.hops(two_hops), 2u);
    // One blocking inter-core teleport: linkLatency * hops cycles.
    EXPECT_EQ(model.cycles(&two_hops, &two_hops + 1), 6u);

    // A fetch from core 2's memory bank into core 0 is also 2 hops.
    Move bank_fetch{1, Location::inMemory(2), Location::inRegion(0),
                    true};
    EXPECT_TRUE(model.interCore(bank_fetch));
    EXPECT_EQ(model.hops(bank_fetch), 2u);

    // Intra-core traffic stays on the EPR fabric: a blocking move
    // within core 1 costs the classic 4-cycle teleport.
    Move intra{2, Location::inMemory(1), Location::inRegion(1), true};
    EXPECT_FALSE(model.interCore(intra));
    EXPECT_EQ(model.cycles(&intra, &intra + 1), 4u);

    // Two blocking one-hop teleports crowding the same link serialize
    // into a second pipelined round: lat * (hops + rounds - 1).
    std::vector<Move> crowd{
        {3, Location::inRegion(0), Location::inRegion(1), true},
        {4, Location::inMemory(0), Location::inRegion(1), true},
    };
    EXPECT_EQ(model.cycles(crowd.data(), crowd.data() + 2), 6u);
}

TEST(LocationCore, MapsThroughTopology)
{
    MultiSimdArch arch;
    std::string error;
    ASSERT_TRUE(parseTopologySpec("cores=2,k=2", arch, error)) << error;
    EXPECT_EQ(locationCore(Location::inRegion(0), arch), 0u);
    EXPECT_EQ(locationCore(Location::inRegion(1), arch), 0u);
    EXPECT_EQ(locationCore(Location::inRegion(2), arch), 1u);
    EXPECT_EQ(locationCore(Location::inLocalMem(3), arch), 1u);
    EXPECT_EQ(locationCore(Location::global(), arch), 0u);
    EXPECT_EQ(locationCore(Location::inMemory(1), arch), 1u);
}

TEST(MultiSimdArch, FingerprintCoversTopology)
{
    MultiSimdArch flat(4, 16, 2);
    EXPECT_EQ(flat.fingerprint(), "d=16|lm=2|epr=" +
              std::to_string(unbounded));

    MultiSimdArch multi;
    std::string error;
    ASSERT_TRUE(parseTopologySpec("cores=2,k=2,link-bw=1", multi,
                                  error))
        << error;
    EXPECT_NE(multi.fingerprint().find("topo=ring:2x2"),
              std::string::npos);
    // Same machine, different mapping strategy: different key.
    MultiSimdArch rr;
    ASSERT_TRUE(parseTopologySpec("cores=2,k=2,link-bw=1,map=roundrobin",
                                  rr, error))
        << error;
    EXPECT_NE(multi.fingerprint(), rr.fingerprint());
}

// --- core-affinity region rebind ---------------------------------------

/** Two independent 2-qubit pairs; greedy maps each pair to its own core. */
Module
pairModule()
{
    Module mod("pairs");
    auto reg = mod.addRegister("q", 4);
    for (int rep = 0; rep < 4; ++rep)
        mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
    for (int rep = 0; rep < 4; ++rep)
        mod.addGate(GateKind::CNOT, {reg[2], reg[3]});
    return mod;
}

TEST(CoreAffinity, SingleCoreIsIdentity)
{
    Module mod = twoClusterModule();
    MultiSimdArch arch(2);
    LeafSchedule sched = RcpScheduler().schedule(mod, arch);
    LeafSchedule same = applyCoreAffinity(sched, arch);
    // No rebind on the flat machine: the very same buffer comes back.
    EXPECT_EQ(same.sharedBuffer().get(), sched.sharedBuffer().get());
}

TEST(CoreAffinity, SlotsLandOnHomeCores)
{
    Module mod = pairModule();
    MultiSimdArch arch;
    std::string error;
    ASSERT_TRUE(parseTopologySpec("cores=2,k=1", arch, error)) << error;
    std::vector<unsigned> home = computeQubitMapping(mod, arch.topology);
    ASSERT_EQ(home[0], home[1]);
    ASSERT_EQ(home[2], home[3]);
    ASSERT_NE(home[0], home[2]);

    // Hand-place each step so both pairs sit on the WRONG core: ops
    // 0..3 touch {q0,q1}, ops 4..7 touch {q2,q3}.
    ScheduleBuilder builder(mod, arch.k);
    for (uint32_t i = 0; i < 4; ++i) {
        builder.beginStep();
        builder.slot(home[2]).kind = GateKind::CNOT;
        builder.slot(home[2]).ops.push_back(i);
        builder.slot(home[0]).kind = GateKind::CNOT;
        builder.slot(home[0]).ops.push_back(4 + i);
        builder.endStep();
    }
    LeafSchedule sched = builder.finish();

    LeafSchedule bound = applyCoreAffinity(sched, arch);
    ASSERT_EQ(bound.computeTimesteps(), 4u);
    EXPECT_EQ(bound.scheduledOps(), 8u);
    for (TimestepView step : bound.steps()) {
        ASSERT_EQ(step.numSlots(), 2u);
        for (RegionSlotView slot : step) {
            ASSERT_EQ(slot.numOps(), 1u);
            QubitId q = mod.op(slot.ops()[0]).operands[0];
            EXPECT_EQ(arch.coreOfRegion(slot.region()), home[q])
                << "op " << slot.ops()[0] << " off its home core";
        }
    }

    // Deterministic and stable: rebinding again changes nothing.
    LeafSchedule again = applyCoreAffinity(bound, arch);
    EXPECT_EQ(again.buffer().slots.size(), bound.buffer().slots.size());
    for (size_t i = 0; i < bound.buffer().slots.size(); ++i)
        EXPECT_EQ(again.buffer().slots[i].region,
                  bound.buffer().slots[i].region);
}

TEST(CoreAffinity, GreedyMappingCutsInterCoreTeleports)
{
    Module mod = twoClusterModule();
    std::string error;
    MultiSimdArch greedy;
    ASSERT_TRUE(parseTopologySpec("cores=2,k=1", greedy, error)) << error;
    MultiSimdArch naive = greedy;
    naive.topology.mapping = MappingStrategy::RoundRobin;

    auto teleports = [&](const MultiSimdArch &arch) {
        LeafSchedule sched = RcpScheduler().schedule(mod, arch);
        return CommunicationAnalyzer(arch, CommMode::Global)
            .annotate(sched)
            .interCoreTeleports;
    };
    // The clustered mapping keeps each clique's traffic on one core;
    // round-robin interleaves the cliques across both.
    EXPECT_LT(teleports(greedy), teleports(naive));
}

} // namespace
