/**
 * @file
 * Tests for the persistent leaf-schedule cache (sched/cache_io.hh):
 * binary round-trips over adversarial ScheduleBuffers (empty steps,
 * move-only steps, idle regions, >64-region bitmaps, saturated
 * summaries), byte-identical re-serialization, truncation/bit-flip
 * rejection with stable P-code diagnostics, the load-path counter
 * accounting (loads never count as misses; hit/miss totals are
 * thread-count- and warm/cold-invariant), and the rebind-time
 * collision guard (P006).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "arch/schedule.hh"
#include "sched/cache_io.hh"
#include "sched/coarse.hh"
#include "sched/comm.hh"
#include "sched/leaf_cache.hh"
#include "sched/lpfs.hh"
#include "support/diagnostic.hh"
#include "support/strings.hh"

namespace {

using namespace msq;

/** Deterministic xorshift PRNG (tests must not depend on libc rand). */
struct Rng
{
    uint64_t state;
    explicit Rng(uint64_t seed) : state(seed ? seed : 1) {}

    uint64_t
    next()
    {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }

    uint64_t pick(uint64_t n) { return n == 0 ? 0 : next() % n; }
};

/** A random leaf module of @p ops gates over @p qubits qubits. */
Module
randomLeaf(Rng &rng, unsigned qubits, unsigned ops)
{
    Module mod("fuzz");
    auto reg = mod.addRegister("q", qubits);
    for (unsigned i = 0; i < ops; ++i) {
        if (qubits >= 2 && rng.pick(3) == 0) {
            QubitId a = reg[rng.pick(qubits)];
            QubitId b = reg[rng.pick(qubits)];
            if (a != b) {
                mod.addGate(GateKind::CNOT, {a, b});
                continue;
            }
        }
        static const GateKind kinds[] = {GateKind::H, GateKind::T,
                                         GateKind::X, GateKind::Sdag};
        mod.addGate(kinds[rng.pick(4)], {reg[rng.pick(qubits)]});
    }
    return mod;
}

/** Schedule @p mod with LPFS at width @p k and annotate movement. */
std::shared_ptr<LeafScheduleResult>
makeResult(const Module &mod, unsigned k, CommMode mode)
{
    MultiSimdArch arch(k);
    LpfsScheduler scheduler;
    auto result = std::make_shared<LeafScheduleResult>();
    LeafSchedule sched =
        scheduler.scheduleWithAttempt(mod, arch, result->attempt);
    result->stats = CommunicationAnalyzer(arch, mode).annotate(sched);
    result->schedule = sched.sharedBuffer();
    result->opCount = mod.numOps();
    result->qubitCount = mod.numQubits();
    return result;
}

void
expectBuffersEqual(const ScheduleBuffer &a, const ScheduleBuffer &b)
{
    EXPECT_EQ(a.k, b.k);
    ASSERT_EQ(a.slots.size(), b.slots.size());
    for (size_t i = 0; i < a.slots.size(); ++i) {
        EXPECT_EQ(a.slots[i].opEnd, b.slots[i].opEnd);
        EXPECT_EQ(a.slots[i].region, b.slots[i].region);
        EXPECT_EQ(a.slots[i].kind, b.slots[i].kind);
    }
    EXPECT_EQ(a.slotEnd, b.slotEnd);
    EXPECT_EQ(a.ops, b.ops);
    ASSERT_EQ(a.moves.size(), b.moves.size());
    for (size_t i = 0; i < a.moves.size(); ++i) {
        EXPECT_EQ(a.moves[i].qubit, b.moves[i].qubit);
        EXPECT_EQ(a.moves[i].from, b.moves[i].from);
        EXPECT_EQ(a.moves[i].to, b.moves[i].to);
        EXPECT_EQ(a.moves[i].blocking, b.moves[i].blocking);
    }
    EXPECT_EQ(a.moveEnd, b.moveEnd);
    EXPECT_EQ(a.activeWords, b.activeWords);
}

void
expectResultsEqual(const LeafScheduleResult &a,
                   const LeafScheduleResult &b)
{
    EXPECT_EQ(a.opCount, b.opCount);
    EXPECT_EQ(a.qubitCount, b.qubitCount);
    EXPECT_EQ(a.stats.teleportMoves, b.stats.teleportMoves);
    EXPECT_EQ(a.stats.blockingTeleports, b.stats.blockingTeleports);
    EXPECT_EQ(a.stats.localMoves, b.stats.localMoves);
    EXPECT_EQ(a.stats.totalCycles, b.stats.totalCycles);
    EXPECT_EQ(a.stats.peakRegionOccupancy, b.stats.peakRegionOccupancy);
    EXPECT_EQ(a.attempt.provenance, b.attempt.provenance);
    EXPECT_EQ(a.attempt.nodesExpanded, b.attempt.nodesExpanded);
    EXPECT_EQ(a.stats.interCoreTeleports, b.stats.interCoreTeleports);
    EXPECT_EQ(a.summary.gateOps, b.summary.gateOps);
    EXPECT_EQ(a.summary.serialCycles, b.summary.serialCycles);
    EXPECT_EQ(a.summary.interCoreTeleports, b.summary.interCoreTeleports);
    EXPECT_EQ(a.summary.occupancy, b.summary.occupancy);
    EXPECT_EQ(a.summary.saturated, b.summary.saturated);
    EXPECT_EQ(a.bounds.criticalPath, b.bounds.criticalPath);
    EXPECT_EQ(a.bounds.resource, b.bounds.resource);
    EXPECT_EQ(a.bounds.interval, b.bounds.interval);
    EXPECT_EQ(a.bounds.saturated, b.bounds.saturated);
    expectBuffersEqual(*a.schedule, *b.schedule);
}

/** Serialize -> deserialize -> compare; returns the decoded result. */
std::shared_ptr<LeafScheduleResult>
roundTrip(const LeafScheduleResult &result)
{
    std::vector<uint8_t> bytes;
    serializeLeafResult(result, "lpfs", "d=0|lm=0|epr=0", bytes);
    std::string fingerprint;
    std::string archFp;
    auto decoded = deserializeLeafResult(bytes.data(), bytes.size(),
                                         fingerprint, archFp);
    EXPECT_NE(decoded, nullptr);
    if (decoded) {
        EXPECT_EQ(fingerprint, "lpfs");
        EXPECT_EQ(archFp, "d=0|lm=0|epr=0");
        expectResultsEqual(result, *decoded);
    }
    return decoded;
}

/** Temp-file path unique to the current test. */
std::string
tempPath(const std::string &stem)
{
    return testing::TempDir() + stem;
}

TEST(CacheIo, FnvMatchesReferenceVectors)
{
    // Standard FNV-1a test vectors: offset basis and "a".
    EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
}

TEST(CacheIo, RoundTripRealSchedule)
{
    Rng rng(42);
    Module mod = randomLeaf(rng, 8, 40);
    auto result = makeResult(mod, 4, CommMode::Global);
    ASSERT_GT(result->schedule->numSteps(), 0u);
    ASSERT_GT(result->schedule->moves.size(), 0u);
    roundTrip(*result);
}

TEST(CacheIo, RoundTripEmptySchedule)
{
    Module mod("empty");
    auto result = makeResult(mod, 4, CommMode::None);
    EXPECT_EQ(result->schedule->numSteps(), 0u);
    roundTrip(*result);
}

TEST(CacheIo, RoundTripEmptyAndMoveOnlySteps)
{
    // Hand-built schedule: a compute step with idle regions between
    // active ones, an entirely empty step, then a move-only step.
    Module mod("m");
    auto reg = mod.addRegister("q", 4);
    mod.addGate(GateKind::H, {reg[0]});
    mod.addGate(GateKind::H, {reg[3]});

    ScheduleBuilder builder(mod, 4);
    builder.beginStep();
    builder.slot(0).kind = GateKind::H;
    builder.slot(0).ops = {0};
    builder.slot(3).kind = GateKind::H;
    builder.slot(3).ops = {1};
    builder.endStep();
    LeafSchedule sched = builder.finish();
    sched.appendEmptyStep();
    sched.appendEmptyStep();
    Move move;
    move.qubit = 2;
    move.from = Location::global();
    move.to = Location::inRegion(1);
    move.blocking = true;
    sched.appendMove(2, move);

    LeafScheduleResult result;
    result.schedule = sched.sharedBuffer();
    result.opCount = mod.numOps();
    result.qubitCount = mod.numQubits();
    auto decoded = roundTrip(result);
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(decoded->schedule->numSteps(), 3u);
    EXPECT_EQ(decoded->schedule->moves.size(), 1u);
}

TEST(CacheIo, RoundTripWideMachineBitmap)
{
    // k = 130 regions: three activeWords words per step, exercising
    // the >64-region bitmap path.
    Module mod("wide");
    auto reg = mod.addRegister("q", 130);
    for (unsigned i = 0; i < 130; ++i)
        mod.addGate(GateKind::H, {reg[i]});
    auto result = makeResult(mod, 130, CommMode::Global);
    EXPECT_EQ(result->schedule->wordsPerStep(), 3u);
    roundTrip(*result);
}

TEST(CacheIo, RoundTripSaturatedSummary)
{
    Module mod("sat");
    auto reg = mod.addRegister("q", 2);
    mod.addGate(GateKind::H, {reg[0]});
    auto result = makeResult(mod, 2, CommMode::None);
    result->summary.gateOps = UINT64_MAX;
    result->summary.serialCycles = UINT64_MAX;
    result->summary.callInvocations = UINT64_MAX;
    result->summary.occupancy = {1, 2, UINT64_MAX, 0, 7};
    result->summary.saturated = true;
    result->bounds.criticalPath = UINT64_MAX;
    result->bounds.saturated = true;
    result->attempt.provenance = ScheduleProvenance::Fallback;
    result->attempt.nodesExpanded = UINT64_MAX;
    roundTrip(*result);
}

TEST(CacheIo, ByteIdenticalReserialization)
{
    Rng rng(7);
    for (int i = 0; i < 8; ++i) {
        Module mod = randomLeaf(rng, 3 + rng.pick(8), 10 + rng.pick(60));
        auto result = makeResult(mod, 2 + rng.pick(6),
                                 i % 2 ? CommMode::Global
                                       : CommMode::None);
        std::vector<uint8_t> first;
        serializeLeafResult(*result, "lpfs", "d=0|lm=0|epr=0", first);
        std::string fingerprint;
        std::string archFp;
        auto decoded = deserializeLeafResult(first.data(), first.size(),
                                             fingerprint, archFp);
        ASSERT_NE(decoded, nullptr);
        std::vector<uint8_t> second;
        serializeLeafResult(*decoded, fingerprint, archFp, second);
        EXPECT_EQ(first, second) << "iteration " << i;
    }
}

TEST(CacheIo, TruncatedPayloadRejectedNotCrash)
{
    Rng rng(3);
    Module mod = randomLeaf(rng, 6, 30);
    auto result = makeResult(mod, 4, CommMode::Global);
    std::vector<uint8_t> bytes;
    serializeLeafResult(*result, "lpfs", "d=0|lm=0|epr=0", bytes);
    // Every proper prefix must decode to nullptr, never crash.
    for (size_t len = 0; len < bytes.size(); ++len) {
        std::string fingerprint;
        std::string archFp;
        EXPECT_EQ(deserializeLeafResult(bytes.data(), len, fingerprint,
                                        archFp),
                  nullptr)
            << "prefix " << len;
    }
}

/** One cache with two distinct real entries, keyed canonically. */
void
populate(LeafScheduleCache &cache, const std::string &suffix)
{
    Rng rng(11);
    for (unsigned i = 0; i < 2; ++i) {
        Module mod = randomLeaf(rng, 4 + i, 20 + 5 * i);
        auto result = makeResult(mod, 4, CommMode::Global);
        cache.insert(leafScheduleKey(mod, 4, suffix), result);
    }
}

TEST(CacheIo, SaveLoadRoundTripAndCounters)
{
    MultiSimdArch arch(4);
    const std::string suffix =
        leafScheduleKeySuffix(LpfsScheduler().fingerprint(), arch,
                              CommMode::Global);
    LeafScheduleCache cache;
    populate(cache, suffix);
    const std::string path = tempPath("cache_roundtrip.msqc");

    DiagnosticEngine diags;
    EXPECT_EQ(cache.saveTo(path, &diags), 2u);
    EXPECT_EQ(diags.numWarnings(), 0u);

    LeafScheduleCache loaded;
    EXPECT_EQ(loaded.loadFrom(path, &diags), 2u);
    EXPECT_EQ(diags.numWarnings(), 0u);
    EXPECT_EQ(loaded.size(), 2u);
    // Satellite contract: preloading counts as loads, never misses.
    EXPECT_EQ(loaded.loads(), 2u);
    EXPECT_EQ(loaded.hits(), 0u);
    EXPECT_EQ(loaded.misses(), 0u);

    // Entries compare equal to the originals.
    auto original = cache.snapshotEntries();
    auto reloaded = loaded.snapshotEntries();
    ASSERT_EQ(original.size(), reloaded.size());
    for (size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(original[i].first, reloaded[i].first);
        expectResultsEqual(*original[i].second, *reloaded[i].second);
    }

    // Re-saving the loaded cache reproduces the file byte for byte
    // (key-sorted entries make the bytes deterministic).
    const std::string path2 = tempPath("cache_roundtrip2.msqc");
    EXPECT_EQ(loaded.saveTo(path2, &diags), 2u);
    std::ifstream a(path, std::ios::binary), b(path2, std::ios::binary);
    std::string bytesA((std::istreambuf_iterator<char>(a)),
                       std::istreambuf_iterator<char>());
    std::string bytesB((std::istreambuf_iterator<char>(b)),
                       std::istreambuf_iterator<char>());
    EXPECT_EQ(bytesA, bytesB);
    std::remove(path.c_str());
    std::remove(path2.c_str());
}

TEST(CacheIo, BadMagicRejected)
{
    MultiSimdArch arch(4);
    const std::string suffix = leafScheduleKeySuffix(
        LpfsScheduler().fingerprint(), arch, CommMode::Global);
    LeafScheduleCache cache;
    populate(cache, suffix);
    const std::string path = tempPath("cache_badmagic.msqc");
    ASSERT_EQ(cache.saveTo(path), 2u);

    std::fstream file(path, std::ios::in | std::ios::out |
                                std::ios::binary);
    file.seekp(0);
    file.put('X');
    file.close();

    LeafScheduleCache loaded;
    DiagnosticEngine diags;
    EXPECT_EQ(loaded.loadFrom(path, &diags), 0u);
    EXPECT_TRUE(diags.has(DiagCode::CacheFileBadMagic));
    std::remove(path.c_str());
}

TEST(CacheIo, BadVersionRejected)
{
    MultiSimdArch arch(4);
    const std::string suffix = leafScheduleKeySuffix(
        LpfsScheduler().fingerprint(), arch, CommMode::Global);
    LeafScheduleCache cache;
    populate(cache, suffix);
    const std::string path = tempPath("cache_badversion.msqc");
    ASSERT_EQ(cache.saveTo(path), 2u);

    std::fstream file(path, std::ios::in | std::ios::out |
                                std::ios::binary);
    file.seekp(4); // version field follows the 4-byte magic
    file.put(static_cast<char>(0x7F));
    file.close();

    LeafScheduleCache loaded;
    DiagnosticEngine diags;
    EXPECT_EQ(loaded.loadFrom(path, &diags), 0u);
    EXPECT_TRUE(diags.has(DiagCode::CacheFileBadVersion));
    std::remove(path.c_str());
}

TEST(CacheIo, TruncatedFileReportsP003)
{
    MultiSimdArch arch(4);
    const std::string suffix = leafScheduleKeySuffix(
        LpfsScheduler().fingerprint(), arch, CommMode::Global);
    LeafScheduleCache cache;
    populate(cache, suffix);
    const std::string path = tempPath("cache_truncated.msqc");
    ASSERT_EQ(cache.saveTo(path), 2u);
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();

    // Cut the file inside the second entry: the first entry must still
    // load; the truncation must be a P003 diagnostic, not a crash.
    std::string cut = bytes.substr(0, bytes.size() - 20);
    const std::string cutPath = tempPath("cache_truncated_cut.msqc");
    std::ofstream(cutPath, std::ios::binary) << cut;
    LeafScheduleCache loaded;
    DiagnosticEngine diags;
    EXPECT_EQ(loaded.loadFrom(cutPath, &diags), 1u);
    EXPECT_TRUE(diags.has(DiagCode::CacheFileTruncated));

    // And every shorter prefix still never crashes.
    for (size_t len = 0; len < bytes.size(); len += 7) {
        std::ofstream(cutPath, std::ios::binary)
            << bytes.substr(0, len);
        LeafScheduleCache prefix_cache;
        prefix_cache.loadFrom(cutPath); // diagnostics optional
    }
    std::remove(path.c_str());
    std::remove(cutPath.c_str());
}

TEST(CacheIo, BitFlippedPayloadReportsP004)
{
    MultiSimdArch arch(4);
    const std::string suffix = leafScheduleKeySuffix(
        LpfsScheduler().fingerprint(), arch, CommMode::Global);
    LeafScheduleCache cache;
    populate(cache, suffix);
    const std::string path = tempPath("cache_bitflip.msqc");
    ASSERT_EQ(cache.saveTo(path), 2u);
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();

    // Flip one byte near the end (inside the last entry's payload):
    // the checksum must catch it; the other entry still loads.
    bytes[bytes.size() - 5] ^= 0x40;
    std::ofstream(path, std::ios::binary) << bytes;
    LeafScheduleCache loaded;
    DiagnosticEngine diags;
    EXPECT_EQ(loaded.loadFrom(path, &diags), 1u);
    EXPECT_TRUE(diags.has(DiagCode::CacheEntryCorrupt));
    std::remove(path.c_str());
}

TEST(CacheIo, KeyPayloadMismatchReportsP005)
{
    MultiSimdArch arch(4);
    const std::string suffix = leafScheduleKeySuffix(
        LpfsScheduler().fingerprint(), arch, CommMode::Global);
    Rng rng(5);
    Module mod = randomLeaf(rng, 5, 25);
    auto result = makeResult(mod, 4, CommMode::Global);

    // File the entry under a key claiming different op/qubit counts
    // than the payload's own guard fields (a forged or collided key).
    std::string key = csprintf(
        "deadbeefdeadbeef|%llu|%llu|w=4|%s",
        static_cast<unsigned long long>(result->opCount + 1),
        static_cast<unsigned long long>(result->qubitCount),
        suffix.c_str());
    LeafScheduleCache cache;
    cache.insertLoaded(key, result);
    const std::string path = tempPath("cache_keymismatch.msqc");
    ASSERT_EQ(cache.saveTo(path), 1u);

    LeafScheduleCache loaded;
    DiagnosticEngine diags;
    EXPECT_EQ(loaded.loadFrom(path, &diags), 0u);
    EXPECT_TRUE(diags.has(DiagCode::CacheEntryKeyMismatch));
    EXPECT_EQ(loaded.size(), 0u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Satellite 1: counter accounting across thread counts and warm/cold
// starts. The PR 3/4 invariance contract said "hit/miss totals are
// identical for any thread count" assuming an empty cache; the load
// path must preserve it — a warm start turns every cold miss into a
// hit, never into a phantom miss.
// ---------------------------------------------------------------------

Program
repeatedLeafProgram()
{
    Program prog;
    ModuleId chain = prog.addModule("chain");
    {
        Module &mod = prog.module(chain);
        QubitId q = mod.addParam("q");
        for (int i = 0; i < 12; ++i)
            mod.addGate(i % 2 ? GateKind::T : GateKind::H, {q});
    }
    ModuleId top = prog.addModule("top");
    {
        Module &mod = prog.module(top);
        QubitId a = mod.addLocal("a");
        QubitId b = mod.addLocal("b");
        QubitId c = mod.addLocal("c");
        mod.addCall(chain, {a}, 3);
        mod.addCall(chain, {b}, 2);
        mod.addCall(chain, {c}, 1);
        mod.addGate(GateKind::CNOT, {a, b});
    }
    prog.setEntry(top);
    return prog;
}

struct CacheTotals
{
    uint64_t hits, misses, loads;
};

CacheTotals
scheduleWithCache(unsigned threads,
                  std::shared_ptr<LeafScheduleCache> cache)
{
    Program prog = repeatedLeafProgram();
    LpfsScheduler leaf;
    CoarseScheduler::Options options;
    options.numThreads = threads;
    options.leafCache = cache;
    CoarseScheduler coarse(MultiSimdArch(4), leaf, CommMode::Global,
                           options);
    coarse.schedule(prog);
    return {cache->hits(), cache->misses(), cache->loads()};
}

TEST(LeafCacheCounters, WarmColdAndThreadCountInvariance)
{
    // Cold baselines at 1 and 4 threads: identical totals.
    CacheTotals cold1 =
        scheduleWithCache(1, std::make_shared<LeafScheduleCache>());
    CacheTotals cold4 =
        scheduleWithCache(4, std::make_shared<LeafScheduleCache>());
    EXPECT_EQ(cold1.hits, cold4.hits);
    EXPECT_EQ(cold1.misses, cold4.misses);
    EXPECT_GT(cold1.misses, 0u);
    EXPECT_EQ(cold1.loads, 0u);

    // Persist a cold cache, then warm-start fresh caches from it.
    auto seed = std::make_shared<LeafScheduleCache>();
    scheduleWithCache(1, seed);
    const std::string path = tempPath("cache_invariance.msqc");
    ASSERT_NE(seed->saveTo(path), SIZE_MAX);

    for (unsigned threads : {1u, 4u}) {
        auto warm = std::make_shared<LeafScheduleCache>();
        DiagnosticEngine diags;
        ASSERT_EQ(warm->loadFrom(path, &diags), seed->size());
        EXPECT_EQ(diags.numWarnings(), 0u);
        CacheTotals totals = scheduleWithCache(threads, warm);
        // Every cold access replays as a hit; loads are not misses.
        EXPECT_EQ(totals.hits, cold1.hits + cold1.misses)
            << "threads=" << threads;
        EXPECT_EQ(totals.misses, 0u) << "threads=" << threads;
        EXPECT_EQ(totals.loads, seed->size());
        EXPECT_EQ(warm->hitRate(), 1.0);
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Satellite 3: the rebind-time collision guard (P006). A cached entry
// whose stored op/qubit counts disagree with the requesting module is
// evicted and recomputed, never silently rebound.
// ---------------------------------------------------------------------

TEST(RebindGuard, MismatchedEntryEvictedAndRecomputed)
{
    Program prog = repeatedLeafProgram();
    LpfsScheduler leaf;
    MultiSimdArch arch(4);

    // Clean run for the ground truth.
    auto clean = std::make_shared<LeafScheduleCache>();
    CoarseScheduler::Options options;
    options.numThreads = 1;
    options.leafCache = clean;
    CoarseScheduler coarse(arch, leaf, CommMode::Global, options);
    Program cleanProg = repeatedLeafProgram();
    ProgramSchedule truth = coarse.schedule(cleanProg);

    // Poison a fresh cache: every clean entry re-filed with corrupted
    // guard counts, as a forged cache file would produce.
    auto poisoned = std::make_shared<LeafScheduleCache>();
    for (const auto &[key, value] : clean->snapshotEntries()) {
        auto forged = std::make_shared<LeafScheduleResult>(*value);
        forged->opCount += 1;
        poisoned->insertLoaded(key, std::move(forged));
    }
    const uint64_t entryCount = poisoned->size();
    ASSERT_GT(entryCount, 0u);

    CoarseScheduler::Options poisonedOptions;
    poisonedOptions.numThreads = 1;
    poisonedOptions.leafCache = poisoned;
    CoarseScheduler guarded(arch, leaf, CommMode::Global,
                            poisonedOptions);
    ProgramSchedule recomputed = guarded.schedule(prog);

    // Every poisoned entry was refused and recomputed; the resulting
    // schedule matches the clean run exactly.
    EXPECT_EQ(poisoned->rejections(), entryCount);
    EXPECT_EQ(recomputed.totalCycles, truth.totalCycles);
    ASSERT_EQ(recomputed.modules.size(), truth.modules.size());
    for (size_t i = 0; i < truth.modules.size(); ++i) {
        if (!truth.modules[i].analyzed)
            continue;
        ASSERT_EQ(recomputed.modules[i].dims.size(),
                  truth.modules[i].dims.size());
        for (size_t d = 0; d < truth.modules[i].dims.size(); ++d) {
            EXPECT_EQ(recomputed.modules[i].dims[d].length,
                      truth.modules[i].dims[d].length);
        }
    }
    // The recomputed (correct) entries replaced the forged ones: the
    // cache now holds exactly the clean entries again.
    auto cleanEntries = clean->snapshotEntries();
    auto healedEntries = poisoned->snapshotEntries();
    ASSERT_EQ(healedEntries.size(), cleanEntries.size());
    for (size_t i = 0; i < cleanEntries.size(); ++i) {
        EXPECT_EQ(healedEntries[i].first, cleanEntries[i].first);
        EXPECT_EQ(healedEntries[i].second->opCount,
                  cleanEntries[i].second->opCount);
        EXPECT_EQ(healedEntries[i].second->stats.totalCycles,
                  cleanEntries[i].second->stats.totalCycles);
    }
}

// ---------------------------------------------------------------------
// .msqc v2: topology-fingerprint guard (P007), inter-core counter
// round-trips, and v1 back-compat (old flat-machine files still load).
// ---------------------------------------------------------------------

void
pushLe32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
pushLe64(std::vector<uint8_t> &out, uint64_t v)
{
    pushLe32(out, static_cast<uint32_t>(v));
    pushLe32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t
le32At(const std::vector<uint8_t> &bytes, size_t pos)
{
    return static_cast<uint32_t>(bytes[pos]) |
           (static_cast<uint32_t>(bytes[pos + 1]) << 8) |
           (static_cast<uint32_t>(bytes[pos + 2]) << 16) |
           (static_cast<uint32_t>(bytes[pos + 3]) << 24);
}

/** One-entry cache file assembled by hand (forged header fields). */
std::vector<uint8_t>
buildCacheFile(uint32_t version, const std::string &key,
               const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> file(cacheFileMagic, cacheFileMagic + 4);
    pushLe32(file, version);
    pushLe32(file, cacheFileEndianTag);
    pushLe64(file, 1);
    pushLe32(file, static_cast<uint32_t>(key.size()));
    file.insert(file.end(), key.begin(), key.end());
    pushLe64(file, payload.size());
    pushLe64(file, fnv1a64(payload.data(), payload.size()));
    file.insert(file.end(), payload.begin(), payload.end());
    return file;
}

/**
 * Convert a v2 payload (serialized with an empty arch fingerprint) to
 * the version-1 layout by dropping the three fields v2 added: the
 * archFpLen u32 and the two trailing interCoreTeleports u64s of
 * CommStats and ResourceSummary (the field offsets follow the layout
 * table in cache_io.hh).
 */
std::vector<uint8_t>
stripToV1Payload(const std::vector<uint8_t> &v2)
{
    uint32_t fpLen = le32At(v2, 16); // after opCount/qubitCount u64s
    size_t archFpPos = 20 + fpLen;
    size_t csInterPos = archFpPos + 4 + 10 * 8;
    size_t attemptBytes = 1 + 5 * 8;
    size_t rsInterPos = csInterPos + 8 + attemptBytes + 14 * 8;
    std::vector<uint8_t> v1;
    v1.insert(v1.end(), v2.begin(), v2.begin() + archFpPos);
    v1.insert(v1.end(), v2.begin() + archFpPos + 4,
              v2.begin() + csInterPos);
    v1.insert(v1.end(), v2.begin() + csInterPos + 8,
              v2.begin() + rsInterPos);
    v1.insert(v1.end(), v2.begin() + rsInterPos + 8, v2.end());
    return v1;
}

TEST(CacheIoV2, InterCoreCountersRoundTrip)
{
    Rng rng(21);
    Module mod = randomLeaf(rng, 6, 30);
    auto result = makeResult(mod, 4, CommMode::Global);
    result->stats.interCoreTeleports = 7;
    result->summary.interCoreTeleports = 5;
    roundTrip(*result);
}

TEST(CacheIoV2, MultiCoreKeySuffixRoundTrip)
{
    MultiSimdArch arch;
    std::string error;
    ASSERT_TRUE(parseTopologySpec(
        "cores=4,k=1,shape=ring,link-bw=1,link-lat=3", arch, error))
        << error;
    const std::string suffix = leafScheduleKeySuffix(
        LpfsScheduler().fingerprint(), arch, CommMode::Global);
    EXPECT_NE(suffix.find("topo=ring:4x1"), std::string::npos);

    LeafScheduleCache cache;
    populate(cache, suffix);
    const std::string path = tempPath("cache_multicore.msqc");
    DiagnosticEngine diags;
    ASSERT_EQ(cache.saveTo(path, &diags), 2u);

    // The stored arch fingerprint agrees with the key, so the entries
    // load cleanly — no P007.
    LeafScheduleCache loaded;
    EXPECT_EQ(loaded.loadFrom(path, &diags), 2u);
    EXPECT_EQ(diags.numWarnings(), 0u);
    EXPECT_FALSE(diags.has(DiagCode::CacheTopologyMismatch));
    auto original = cache.snapshotEntries();
    auto reloaded = loaded.snapshotEntries();
    ASSERT_EQ(original.size(), reloaded.size());
    for (size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(original[i].first, reloaded[i].first);
        expectResultsEqual(*original[i].second, *reloaded[i].second);
    }
    std::remove(path.c_str());
}

TEST(CacheIoV2, TopologyMismatchReportsP007)
{
    // Payload claims it was scheduled for a ring topology; the key it
    // is filed under is a flat-machine key. The entry must be skipped
    // with a P007 diagnostic, not rebound to the wrong machine.
    MultiSimdArch arch(4);
    const std::string fp = LpfsScheduler().fingerprint();
    const std::string suffix =
        leafScheduleKeySuffix(fp, arch, CommMode::Global);
    Rng rng(9);
    Module mod = randomLeaf(rng, 5, 25);
    auto result = makeResult(mod, 4, CommMode::Global);

    std::vector<uint8_t> payload;
    serializeLeafResult(*result, fp,
                        "topo=ring:9x9|lbw=1|llat=3|map=greedy",
                        payload);
    std::vector<uint8_t> file = buildCacheFile(
        cacheFileVersion, leafScheduleKey(mod, 4, suffix), payload);

    const std::string path = tempPath("cache_p007.msqc");
    std::ofstream(path, std::ios::binary)
        .write(reinterpret_cast<const char *>(file.data()),
               static_cast<std::streamsize>(file.size()));
    LeafScheduleCache loaded;
    DiagnosticEngine diags;
    EXPECT_EQ(loaded.loadFrom(path, &diags), 0u);
    EXPECT_TRUE(diags.has(DiagCode::CacheTopologyMismatch));
    EXPECT_EQ(loaded.size(), 0u);
    std::remove(path.c_str());
}

TEST(CacheIoV2, VersionOneFileStillLoads)
{
    // A v1 file is byte-for-byte what the pre-topology code wrote: no
    // arch fingerprint, 10-field CommStats, 14-field ResourceSummary.
    MultiSimdArch arch(4);
    const std::string fp = LpfsScheduler().fingerprint();
    const std::string suffix =
        leafScheduleKeySuffix(fp, arch, CommMode::Global);
    Rng rng(13);
    Module mod = randomLeaf(rng, 6, 30);
    auto result = makeResult(mod, 4, CommMode::Global);
    result->stats.interCoreTeleports = 0;

    std::vector<uint8_t> v2payload;
    serializeLeafResult(*result, fp, "", v2payload);
    std::vector<uint8_t> v1payload = stripToV1Payload(v2payload);
    ASSERT_EQ(v1payload.size(), v2payload.size() - 4 - 8 - 8);
    std::vector<uint8_t> file = buildCacheFile(
        1, leafScheduleKey(mod, 4, suffix), v1payload);

    const std::string path = tempPath("cache_v1.msqc");
    std::ofstream(path, std::ios::binary)
        .write(reinterpret_cast<const char *>(file.data()),
               static_cast<std::streamsize>(file.size()));
    LeafScheduleCache loaded;
    DiagnosticEngine diags;
    EXPECT_EQ(loaded.loadFrom(path, &diags), 1u);
    EXPECT_EQ(diags.numWarnings(), 0u);
    auto entries = loaded.snapshotEntries();
    ASSERT_EQ(entries.size(), 1u);
    expectResultsEqual(*result, *entries[0].second);
    EXPECT_EQ(entries[0].second->stats.interCoreTeleports, 0u);
    EXPECT_EQ(entries[0].second->summary.interCoreTeleports, 0u);
    std::remove(path.c_str());
}

TEST(RebindGuard, LegacyZeroCountFixturesStillRebind)
{
    LeafScheduleResult legacy;
    EXPECT_TRUE(legacy.matchesModule(10, 3)); // 0/0 guard skips
    legacy.opCount = 10;
    legacy.qubitCount = 3;
    EXPECT_TRUE(legacy.matchesModule(10, 3));
    EXPECT_FALSE(legacy.matchesModule(11, 3));
    EXPECT_FALSE(legacy.matchesModule(10, 4));
}

} // namespace
