/**
 * @file
 * Property-based tests: every (scheduler x architecture x random module)
 * combination must produce a schedule that passes the full validator —
 * coverage, dependences, SIMD homogeneity, qubit exclusivity, d budget,
 * and movement consistency under every communication mode — and core
 * metric invariants must hold (length >= critical path, length >= ops/k,
 * local memory never increases cost).
 */

#include <gtest/gtest.h>

#include "support/logging.hh"

#include "ir/dag.hh"
#include "sched/comm.hh"
#include "sched/lpfs.hh"
#include "sched/rcp.hh"
#include "sched/validator.hh"
#include "support/rng.hh"

namespace {

using namespace msq;

/** Random leaf module generator: mixed 1- and 2-qubit primitive gates. */
Module
randomModule(uint64_t seed, unsigned qubits, unsigned ops)
{
    SplitMix64 rng(seed);
    Module mod("random");
    auto reg = mod.addRegister("q", qubits);
    const GateKind one_q[] = {GateKind::H,    GateKind::T, GateKind::Tdag,
                              GateKind::S,    GateKind::X, GateKind::Z,
                              GateKind::Sdag, GateKind::Y};
    for (unsigned i = 0; i < ops; ++i) {
        if (qubits >= 2 && rng.nextBelow(100) < 25) {
            QubitId a = static_cast<QubitId>(rng.nextBelow(qubits));
            QubitId b = static_cast<QubitId>(rng.nextBelow(qubits));
            if (a == b)
                b = (b + 1) % qubits;
            mod.addGate(rng.nextBelow(2) ? GateKind::CNOT : GateKind::CZ,
                        {a, b});
        } else {
            QubitId a = static_cast<QubitId>(rng.nextBelow(qubits));
            mod.addGate(one_q[rng.nextBelow(8)], {a});
        }
    }
    return mod;
}

struct PropertyCase
{
    uint64_t seed;
    unsigned qubits;
    unsigned ops;
    unsigned k;
    uint64_t d;
    uint64_t local;
};

class SchedulerProperties : public ::testing::TestWithParam<PropertyCase>
{};

TEST_P(SchedulerProperties, AllInvariantsHold)
{
    const auto &param = GetParam();
    Module mod = randomModule(param.seed, param.qubits, param.ops);
    MultiSimdArch arch(param.k, param.d, param.local);
    DepDag dag = DepDag::build(mod);
    uint64_t critical_path = dag.criticalPathLength();

    std::vector<std::unique_ptr<LeafScheduler>> schedulers;
    schedulers.push_back(std::make_unique<SequentialScheduler>());
    schedulers.push_back(std::make_unique<RcpScheduler>());
    schedulers.push_back(std::make_unique<LpfsScheduler>());
    LpfsScheduler::Options no_simd;
    no_simd.simd = false;
    schedulers.push_back(std::make_unique<LpfsScheduler>(no_simd));

    for (const auto &scheduler : schedulers) {
        LeafSchedule sched = scheduler->schedule(mod, arch);
        SCOPED_TRACE(scheduler->name());

        // Compute-only invariants.
        validateLeafSchedule(sched, arch);
        EXPECT_EQ(sched.scheduledOps(), mod.numOps());
        EXPECT_GE(sched.computeTimesteps(), critical_path);
        EXPECT_LE(sched.computeTimesteps(), mod.numOps());

        // Movement consistency under every communication mode.
        uint64_t global_cycles = 0;
        uint64_t local_cycles = 0;
        for (CommMode mode : {CommMode::Global,
                              CommMode::GlobalWithLocalMem}) {
            CommunicationAnalyzer comm(arch, mode);
            CommStats stats = comm.annotate(sched);
            validateLeafSchedule(sched, arch, true);
            EXPECT_EQ(stats.totalCycles, sched.totalCycles());
            EXPECT_GE(stats.totalCycles, sched.computeTimesteps());
            if (mode == CommMode::Global) {
                global_cycles = stats.totalCycles;
                EXPECT_EQ(stats.localMoves, 0u);
            } else {
                local_cycles = stats.totalCycles;
            }
            EXPECT_GE(stats.teleportMoves, stats.blockingTeleports);
        }
        // Scratchpads can only remove blocking teleports.
        EXPECT_LE(local_cycles, global_cycles);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerProperties,
    ::testing::Values(
        PropertyCase{1, 4, 60, 2, unbounded, 0},
        PropertyCase{2, 4, 60, 2, unbounded, 4},
        PropertyCase{3, 8, 200, 4, unbounded, 2},
        PropertyCase{4, 8, 200, 4, 4, 8},
        PropertyCase{5, 12, 400, 4, unbounded, unbounded},
        PropertyCase{6, 3, 50, 1, unbounded, 1},
        PropertyCase{7, 16, 500, 8, unbounded, 0},
        PropertyCase{8, 16, 500, 8, 2, 16},
        PropertyCase{9, 2, 30, 6, unbounded, 3},
        PropertyCase{10, 24, 800, 3, 6, 2},
        PropertyCase{11, 6, 120, 2, 2, unbounded},
        PropertyCase{12, 10, 300, 5, unbounded, 5}),
    [](const ::testing::TestParamInfo<PropertyCase> &info) {
        const auto &param = info.param;
        std::string d_text = param.d == unbounded
                                 ? "inf"
                                 : std::to_string(param.d);
        std::string local_text = param.local == unbounded
                                     ? "inf"
                                     : std::to_string(param.local);
        return "seed" + std::to_string(param.seed) + "_q" +
               std::to_string(param.qubits) + "_ops" +
               std::to_string(param.ops) + "_k" +
               std::to_string(param.k) + "_d" + d_text + "_local" +
               local_text;
    });

/** Single-qubit chains only: schedulers should approach zero blocking
 * communication (the pinning property LPFS is designed for). */
TEST(SchedulerProperties, PinnedChainsHaveLowBlockingTraffic)
{
    Module mod("chains");
    SplitMix64 rng(42);
    const GateKind types[] = {GateKind::H, GateKind::T, GateKind::S,
                              GateKind::X, GateKind::Z, GateKind::Tdag};
    auto reg = mod.addRegister("q", 4);
    for (int i = 0; i < 100; ++i)
        for (QubitId q : reg)
            mod.addGate(types[rng.nextBelow(6)], {q});

    MultiSimdArch arch(4);
    LpfsScheduler lpfs;
    LeafSchedule sched = lpfs.schedule(mod, arch);
    CommunicationAnalyzer comm(arch, CommMode::Global);
    CommStats stats = comm.annotate(sched);
    // 4 chains on 4 regions: after warm-up, essentially no movement.
    EXPECT_LT(stats.blockingTeleports, 20u);
    EXPECT_LT(stats.totalCycles, 150u); // ~100 steps + small overhead
}

TEST(SchedulerProperties, DeterministicSchedules)
{
    Module mod = randomModule(99, 8, 300);
    MultiSimdArch arch(4);
    for (auto make : {+[]() -> std::unique_ptr<LeafScheduler> {
                          return std::make_unique<RcpScheduler>();
                      },
                      +[]() -> std::unique_ptr<LeafScheduler> {
                          return std::make_unique<LpfsScheduler>();
                      }}) {
        auto s1 = make()->schedule(mod, arch);
        auto s2 = make()->schedule(mod, arch);
        ASSERT_EQ(s1.computeTimesteps(), s2.computeTimesteps());
        for (uint64_t ts = 0; ts < s1.computeTimesteps(); ++ts) {
            TimestepView a = s1.step(ts);
            TimestepView b = s2.step(ts);
            ASSERT_EQ(a.numSlots(), b.numSlots());
            for (unsigned i = 0; i < a.numSlots(); ++i) {
                RegionSlotView sa = a.slot(i);
                RegionSlotView sb = b.slot(i);
                EXPECT_EQ(sa.region(), sb.region());
                EXPECT_EQ(sa.kind(), sb.kind());
                OpSpan oa = sa.ops();
                OpSpan ob = sb.ops();
                EXPECT_EQ(std::vector<uint32_t>(oa.begin(), oa.end()),
                          std::vector<uint32_t>(ob.begin(), ob.end()));
            }
        }
    }
}

} // namespace
