/**
 * @file
 * Tests for the telemetry layer (support/telemetry.hh): metric
 * primitives, snapshot/JSON rendering, registry merging, the trace
 * recorder under multi-threaded fan-out, and the end-to-end
 * ToolflowResult::telemetry surface across every scaled workload.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/toolflow.hh"
#include "support/telemetry.hh"
#include "support/thread_pool.hh"
#include "workloads/workloads.hh"

namespace {

using namespace msq;

/**
 * Minimal recursive-descent JSON validator — enough to prove the
 * emitted documents are well-formed without a JSON dependency.
 */
class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    bool
    string()
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        size_t begin = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > begin;
    }

    bool
    value()
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (!string())
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

TEST(Telemetry, CounterAndGauge)
{
    Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);

    Gauge gauge;
    gauge.set(-7);
    EXPECT_EQ(gauge.value(), -7);
    gauge.setMax(3);
    EXPECT_EQ(gauge.value(), 3);
    gauge.setMax(-100);
    EXPECT_EQ(gauge.value(), 3);
}

TEST(Telemetry, DistributionPercentiles)
{
    Distribution dist;
    // Record 100..1 (reverse order): percentiles sort internally.
    for (int v = 100; v >= 1; --v)
        dist.record(v);
    DistributionStats stats = dist.stats();
    EXPECT_EQ(stats.count, 100u);
    EXPECT_DOUBLE_EQ(stats.sum, 5050.0);
    EXPECT_DOUBLE_EQ(stats.min, 1.0);
    EXPECT_DOUBLE_EQ(stats.max, 100.0);
    EXPECT_DOUBLE_EQ(stats.p50, 50.0);
    EXPECT_DOUBLE_EQ(stats.p99, 99.0);
}

TEST(Telemetry, DistributionSingleSample)
{
    Distribution dist;
    dist.record(3.5);
    DistributionStats stats = dist.stats();
    EXPECT_EQ(stats.count, 1u);
    EXPECT_DOUBLE_EQ(stats.min, 3.5);
    EXPECT_DOUBLE_EQ(stats.max, 3.5);
    EXPECT_DOUBLE_EQ(stats.p50, 3.5);
    EXPECT_DOUBLE_EQ(stats.p99, 3.5);
}

TEST(Telemetry, JsonHelpers)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(0.5), "0.5");
    // Shortest round-trippable form: parsing it back is exact.
    std::string third = jsonNumber(1.0 / 3.0);
    EXPECT_DOUBLE_EQ(std::stod(third), 1.0 / 3.0);
}

TEST(Telemetry, RegistrySnapshotSortedAndStable)
{
    MetricsRegistry registry;
    registry.counter("zzz.last").add(1);
    registry.gauge("aaa.first").set(5);
    registry.distribution("mmm.middle_ms").record(1.0);
    Counter &again = registry.counter("zzz.last");
    again.add(1);

    MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.entries.size(), 3u);
    EXPECT_EQ(snap.entries[0].name, "aaa.first");
    EXPECT_EQ(snap.entries[1].name, "mmm.middle_ms");
    EXPECT_EQ(snap.entries[2].name, "zzz.last");
    EXPECT_EQ(snap.counter("zzz.last"), 2u);
    EXPECT_EQ(snap.gauge("aaa.first"), 5);
    EXPECT_EQ(snap.find("nope"), nullptr);

    std::string json = snap.toJson();
    EXPECT_TRUE(JsonValidator(json).valid()) << json;
}

TEST(Telemetry, RegistryMerge)
{
    MetricsRegistry src;
    MetricsRegistry dst;
    src.counter("c").add(5);
    dst.counter("c").add(2);
    src.gauge("g").set(10);
    dst.gauge("g").set(99);
    src.gauge("occupancy_peak").set(4);
    dst.gauge("occupancy_peak").set(7);
    src.distribution("d").record(1.0);
    dst.distribution("d").record(2.0);

    src.mergeInto(dst);
    MetricsSnapshot snap = dst.snapshot();
    EXPECT_EQ(snap.counter("c"), 7u);
    // Plain gauges take the source's last value; "_peak" gauges merge
    // via max so a lower later run cannot erase a higher peak.
    EXPECT_EQ(snap.gauge("g"), 10);
    EXPECT_EQ(snap.gauge("occupancy_peak"), 7);
    EXPECT_EQ(snap.find("d")->dist.count, 2u);
}

TEST(Telemetry, CountersAreThreadSafe)
{
    MetricsRegistry registry;
    Counter &counter = registry.counter("n");
    ThreadPool pool(4);
    pool.parallelFor(1000, [&](uint64_t) { counter.add(1); });
    EXPECT_EQ(counter.value(), 1000u);
}

TEST(Telemetry, TraceRecorderDisabledSpanIsInactive)
{
    TraceRecorder recorder;
    EXPECT_FALSE(recorder.enabled());
    {
        TraceSpan span(recorder, "ignored");
        EXPECT_FALSE(span.active());
    }
    EXPECT_TRUE(recorder.flush().empty());
}

TEST(Telemetry, TraceRecorderMultiThreaded)
{
    TraceRecorder recorder;
    recorder.setEnabled(true);
    ThreadPool pool(4);
    pool.parallelFor(64, [&](uint64_t i) {
        TraceSpan span(recorder, "task" + std::to_string(i));
        span.setArgs("\"index\": " + std::to_string(i));
    });
    {
        TraceSpan outer(recorder, "outer");
        EXPECT_TRUE(outer.active());
    }
    recorder.setEnabled(false);

    std::vector<TraceEvent> events = recorder.flush();
    ASSERT_EQ(events.size(), 65u);
    std::set<std::string> names;
    std::set<uint32_t> tids;
    for (size_t i = 0; i < events.size(); ++i) {
        names.insert(events[i].name);
        tids.insert(events[i].tid);
        if (i > 0) {
            EXPECT_GE(events[i].tsUs, events[i - 1].tsUs);
        }
    }
    EXPECT_EQ(names.size(), 65u);
    EXPECT_GE(tids.size(), 1u);
    // Flushed means drained.
    EXPECT_TRUE(recorder.flush().empty());
}

TEST(Telemetry, ChromeTraceJsonShape)
{
    TraceRecorder recorder;
    recorder.setEnabled(true);
    {
        TraceSpan span(recorder, "phase \"one\"");
        span.setArgs("\"gates\": 12");
    }
    { TraceSpan span(recorder, "phase-two"); }
    recorder.setEnabled(false);

    std::ostringstream os;
    recorder.writeChromeTrace(os);
    std::string json = os.str();
    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\": "), std::string::npos);
    EXPECT_NE(json.find("\"tid\": "), std::string::npos);
    EXPECT_NE(json.find("\"gates\": 12"), std::string::npos);
    EXPECT_NE(json.find("phase \\\"one\\\""), std::string::npos);
}

/** The keys any toolflow run must surface. */
const char *const kRequiredMetrics[] = {
    "toolflow.total_gates",      "toolflow.critical_path",
    "toolflow.qubits",           "toolflow.scheduled_cycles",
    "toolflow.runs",             "sched.leaf.instances",
    "sched.leaf.gates",          "sched.leaf.cycles",
    "sched.width_sweep_points",  "comm.teleport_moves",
    "comm.epr_pairs_consumed",   "comm.active_region_steps",
    "comm.region_occupancy_peak", "passes.decompose-toffoli.runs",
    "passes.flatten.runs",       "sched.total_ms",
};

TEST(Telemetry, ToolflowTelemetryAcrossAllWorkloads)
{
    for (const auto &spec : workloads::scaledParams()) {
        SCOPED_TRACE(spec.shortName);
        Program prog = spec.build();
        ToolflowConfig config;
        config.arch = MultiSimdArch(4);
        config.rotations = Toolflow::rotationPresetFor(spec.shortName);
        ToolflowResult result = Toolflow(config).run(prog);

        const MetricsSnapshot &snap = result.telemetry;
        ASSERT_FALSE(snap.entries.empty());
        for (const char *name : kRequiredMetrics)
            EXPECT_NE(snap.find(name), nullptr) << name;
        EXPECT_EQ(
            static_cast<uint64_t>(snap.gauge("toolflow.total_gates")),
            result.totalGates);
        EXPECT_EQ(static_cast<uint64_t>(
                      snap.gauge("toolflow.scheduled_cycles")),
                  result.scheduledCycles);

        std::string json = snap.toJson();
        EXPECT_TRUE(JsonValidator(json).valid())
            << spec.shortName << ": " << json.substr(0, 200);
    }
}

TEST(Telemetry, ToolflowSnapshotKeyOrderIsStable)
{
    auto run = [] {
        auto spec = workloads::findWorkload(workloads::scaledParams(),
                                            "grovers");
        Program prog = spec.build();
        ToolflowConfig config;
        config.arch = MultiSimdArch(4);
        return Toolflow(config).run(prog);
    };
    ToolflowResult first = run();
    ToolflowResult second = run();
    ASSERT_EQ(first.telemetry.entries.size(),
              second.telemetry.entries.size());
    for (size_t i = 0; i < first.telemetry.entries.size(); ++i) {
        EXPECT_EQ(first.telemetry.entries[i].name,
                  second.telemetry.entries[i].name);
    }
}

TEST(Telemetry, ExternalRegistryAccumulatesAcrossRuns)
{
    MetricsRegistry shared;
    auto run = [&] {
        auto spec =
            workloads::findWorkload(workloads::scaledParams(), "tfp");
        Program prog = spec.build();
        ToolflowConfig config;
        config.arch = MultiSimdArch(4);
        config.metrics = &shared;
        return Toolflow(config).run(prog);
    };
    ToolflowResult first = run();
    ToolflowResult second = run();
    EXPECT_EQ(first.telemetry.counter("toolflow.runs"), 1u);
    EXPECT_EQ(second.telemetry.counter("toolflow.runs"), 2u);
    EXPECT_EQ(second.telemetry.counter("sched.leaf.instances"),
              2 * first.telemetry.counter("sched.leaf.instances"));
}

TEST(Telemetry, ExplicitMetricsPathFlushesWithoutExit)
{
    // The daemon-lifetime path (DESIGN.md §15): a long-running process
    // can't rely on the atexit hook, so it points the metrics sink at a
    // file programmatically and flushes on its own cadence. Each flush
    // must observe everything merged so far.
    const std::string path = testing::TempDir() + "telemetry_daemon.json";
    std::remove(path.c_str());

    Telemetry::setMetricsPath(path);
    EXPECT_TRUE(Telemetry::metricsEnabled());
    EXPECT_EQ(Telemetry::metricsPath(), path);

    MetricsRegistry perRequest;
    perRequest.counter("serve.requests").add(3);
    perRequest.mergeInto(Telemetry::metrics());
    Telemetry::flushEnvOutputs();

    std::ifstream first(path);
    ASSERT_TRUE(first.good());
    std::string json((std::istreambuf_iterator<char>(first)),
                     std::istreambuf_iterator<char>());
    EXPECT_TRUE(JsonValidator(json).valid());
    EXPECT_NE(json.find("serve.requests"), std::string::npos);

    // A later periodic flush overwrites with the accumulated totals.
    MetricsRegistry nextRequest;
    nextRequest.counter("serve.requests").add(2);
    nextRequest.mergeInto(Telemetry::metrics());
    Telemetry::flushEnvOutputs();
    std::ifstream second(path);
    std::string updated((std::istreambuf_iterator<char>(second)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(Telemetry::metrics()
                  .snapshot()
                  .counter("serve.requests"),
              5u);
    EXPECT_TRUE(JsonValidator(updated).valid());

    // Disable and restore global state for the other tests.
    Telemetry::setMetricsPath("");
    EXPECT_FALSE(Telemetry::metricsEnabled());
    EXPECT_EQ(Telemetry::metricsPath(), "");
    std::remove(path.c_str());
}

} // anonymous namespace
