/**
 * @file
 * Tests for the branch-and-bound OptScheduler tier (sched/opt.hh) and
 * the scheduler correctness fixes that ride with it: deterministic
 * op-index tie-breaking in RCP/LPFS, duplicate-operand rejection, the
 * B007 false-certificate check, and thread/cache invariance of the
 * opt-scheduled toolflow.
 *
 * The property tests run under CommMode::None, where a schedule's
 * totalCycles equals its compute-timestep count — the regime in which
 * the LB certificate (totalCycles == composite bound) is attainable
 * and the opt tier produces real proofs.
 */

#include <gtest/gtest.h>

#include <random>
#include <utility>
#include <vector>

#include "analysis/bounds.hh"
#include "core/toolflow.hh"
#include "ir/module.hh"
#include "sched/comm.hh"
#include "sched/lpfs.hh"
#include "sched/opt.hh"
#include "sched/rcp.hh"
#include "sched/validator.hh"
#include "support/logging.hh"
#include "verify/bound_checker.hh"
#include "workloads/workloads.hh"

namespace {

using namespace msq;

/** n independent H gates on n distinct qubits. */
Module
parallelH(unsigned n)
{
    Module mod("h");
    auto reg = mod.addRegister("q", n);
    for (QubitId q : reg)
        mod.addGate(GateKind::H, {q});
    return mod;
}

/**
 * A fixed instance on which both heuristics are provably suboptimal:
 * at k = 1, d = 2 the composite bound is 5 timesteps, RCP and LPFS
 * both schedule 7, and the branch-and-bound search finds (and
 * certifies) a 5-step packing. Found by random search over small DAGs;
 * kept literal so the regression is independent of any generator.
 */
Module
witnessModule()
{
    Module mod("witness");
    std::vector<QubitId> q;
    for (int i = 0; i < 5; ++i)
        q.push_back(mod.addLocal("q" + std::to_string(i)));
    mod.addGate(GateKind::X, {q[2]});
    mod.addGate(GateKind::CNOT, {q[1], q[3]});
    mod.addGate(GateKind::X, {q[0]});
    mod.addGate(GateKind::T, {q[2]});
    mod.addGate(GateKind::X, {q[3]});
    mod.addGate(GateKind::X, {q[2]});
    mod.addGate(GateKind::CZ, {q[0], q[4]});
    mod.addGate(GateKind::T, {q[1]});
    return mod;
}

/** Per-op (timestep, region) placement, indexed by op index. */
std::vector<std::pair<uint64_t, unsigned>>
opPlacements(const LeafSchedule &sched)
{
    std::vector<std::pair<uint64_t, unsigned>> out(
        sched.module().numOps(), {0, 0});
    for (const TimestepView &step : sched.steps())
        for (const RegionSlotView &slot : step)
            for (uint32_t op : slot.ops())
                out[op] = {step.index(), slot.region()};
    return out;
}

/** Structural equality of the underlying schedule buffers. */
void
expectSameBuffer(const LeafSchedule &a, const LeafSchedule &b)
{
    const ScheduleBuffer &ba = a.buffer();
    const ScheduleBuffer &bb = b.buffer();
    EXPECT_EQ(ba.k, bb.k);
    EXPECT_EQ(ba.ops, bb.ops);
    EXPECT_EQ(ba.slotEnd, bb.slotEnd);
    ASSERT_EQ(ba.slots.size(), bb.slots.size());
    for (size_t i = 0; i < ba.slots.size(); ++i) {
        EXPECT_EQ(ba.slots[i].opEnd, bb.slots[i].opEnd);
        EXPECT_EQ(ba.slots[i].region, bb.slots[i].region);
        EXPECT_EQ(ba.slots[i].kind, bb.slots[i].kind);
    }
}

uint64_t
annotatedCycles(const LeafSchedule &sched, const MultiSimdArch &arch,
                CommMode mode)
{
    LeafSchedule copy = sched;
    CommunicationAnalyzer comm(arch, mode);
    return comm.annotate(copy).totalCycles;
}

// ---------------------------------------------------------------------
// OptScheduler core behavior.

TEST(Opt, RootCertificateWithoutSearch)
{
    // Width-1 parallel work: the LPFS fallback already sits on the
    // bound, so the proof closes at the root with zero nodes expanded.
    Module mod = parallelH(10);
    MultiSimdArch arch(4, unbounded, 0);
    OptScheduler::Options options;
    options.commMode = CommMode::None;
    OptScheduler opt(options);
    ScheduleAttempt attempt;
    LeafSchedule sched = opt.scheduleWithAttempt(mod, arch, attempt);
    EXPECT_EQ(sched.computeTimesteps(), 1u);
    EXPECT_EQ(attempt.provenance, ScheduleProvenance::Optimal);
    EXPECT_EQ(attempt.nodesExpanded, 0u);
    EXPECT_TRUE(validateLeafSchedule(sched, arch));
    EXPECT_EQ(computeLeafBounds(mod, arch).composite(), 1u);
}

TEST(Opt, SearchStrictlyBeatsBothHeuristics)
{
    Module mod = witnessModule();
    MultiSimdArch arch(1, 2, 0);
    const uint64_t lb = computeLeafBounds(mod, arch).composite();
    ASSERT_EQ(lb, 5u);

    RcpScheduler rcp;
    LpfsScheduler lpfs;
    EXPECT_EQ(rcp.schedule(mod, arch).computeTimesteps(), 7u);
    EXPECT_EQ(lpfs.schedule(mod, arch).computeTimesteps(), 7u);

    OptScheduler::Options options;
    options.commMode = CommMode::None;
    OptScheduler opt(options);
    ScheduleAttempt attempt;
    LeafSchedule sched = opt.scheduleWithAttempt(mod, arch, attempt);
    EXPECT_EQ(attempt.provenance, ScheduleProvenance::Optimal);
    EXPECT_GT(attempt.nodesExpanded, 0u); // a real search, not tier-0
    EXPECT_EQ(sched.computeTimesteps(), lb);
    EXPECT_EQ(sched.scheduledOps(), mod.numOps());
    EXPECT_TRUE(validateLeafSchedule(sched, arch));
    // The certificate is judged on annotated cycles, not just steps.
    EXPECT_EQ(annotatedCycles(sched, arch, CommMode::None), lb);
}

TEST(Opt, ZeroBudgetFallsBackToConfiguredHeuristic)
{
    Module mod = witnessModule();
    MultiSimdArch arch(1, 2, 0);
    for (OptFallback fb : {OptFallback::Lpfs, OptFallback::Rcp}) {
        OptScheduler::Options options;
        options.commMode = CommMode::None;
        options.nodeBudget = 0;
        options.fallback = fb;
        OptScheduler opt(options);
        ScheduleAttempt attempt;
        LeafSchedule sched = opt.scheduleWithAttempt(mod, arch, attempt);
        EXPECT_EQ(attempt.provenance, ScheduleProvenance::Fallback);
        EXPECT_EQ(attempt.nodesExpanded, 0u);
        LeafSchedule expected = fb == OptFallback::Rcp
                                    ? RcpScheduler().schedule(mod, arch)
                                    : LpfsScheduler().schedule(mod, arch);
        expectSameBuffer(sched, expected);
    }
}

TEST(Opt, OversizedLeafFallsBackWithoutSearch)
{
    // 300 independent gates of two kinds at k = 1: the composite bound
    // is 1 but kind-homogeneity forces >= 2 steps, so the root
    // certificate cannot close — and with more ops than maxOps the
    // search must not even start.
    Module mod("big");
    for (int i = 0; i < 300; ++i) { // default maxOps is 256
        QubitId q = mod.addLocal("q" + std::to_string(i));
        mod.addGate(i % 2 ? GateKind::T : GateKind::H, {q});
    }
    OptScheduler::Options options;
    options.commMode = CommMode::None;
    OptScheduler opt(options);
    ScheduleAttempt attempt;
    MultiSimdArch arch(1, unbounded, 0);
    LeafSchedule sched = opt.scheduleWithAttempt(mod, arch, attempt);
    EXPECT_EQ(attempt.provenance, ScheduleProvenance::Fallback);
    EXPECT_EQ(attempt.nodesExpanded, 0u);
    EXPECT_EQ(sched.computeTimesteps(), 2u);
    EXPECT_EQ(computeLeafBounds(mod, arch).composite(), 1u);
}

TEST(Opt, FingerprintCoversEveryOutputAffectingOption)
{
    // Distinct fingerprints keep differently-configured opt schedulers
    // from aliasing in the leaf-schedule memoization cache.
    const std::string base = OptScheduler().fingerprint();
    OptScheduler::Options options;
    options.nodeBudget = 17;
    EXPECT_NE(OptScheduler(options).fingerprint(), base);
    options = OptScheduler::Options{};
    options.maxOps = 8;
    EXPECT_NE(OptScheduler(options).fingerprint(), base);
    options = OptScheduler::Options{};
    options.commMode = CommMode::None;
    EXPECT_NE(OptScheduler(options).fingerprint(), base);
    options = OptScheduler::Options{};
    options.fallback = OptFallback::Rcp;
    EXPECT_NE(OptScheduler(options).fingerprint(), base);
}

// ---------------------------------------------------------------------
// Property test: randomized small DAGs.

TEST(OptProperty, RandomDagsSitBetweenBoundAndFallback)
{
    std::mt19937 rng(20260808);
    RcpScheduler rcp;
    LpfsScheduler lpfs;
    unsigned proofs = 0;
    unsigned fallbacks = 0;
    for (int trial = 0; trial < 60; ++trial) {
        const unsigned nq = 3 + rng() % 6;
        const unsigned nops = 5 + rng() % 36; // <= 40 ops
        const unsigned k = 1 + rng() % 3;
        const unsigned d = 2 + rng() % 3;
        Module mod("rand" + std::to_string(trial));
        std::vector<QubitId> qs;
        for (unsigned i = 0; i < nq; ++i)
            qs.push_back(mod.addLocal("q" + std::to_string(i)));
        for (unsigned i = 0; i < nops; ++i) {
            if (rng() % 3 == 0) {
                unsigned a = rng() % nq;
                unsigned b = rng() % nq;
                while (b == a)
                    b = rng() % nq;
                mod.addGate(rng() % 2 ? GateKind::CNOT : GateKind::CZ,
                            {qs[a], qs[b]});
            } else {
                static const GateKind kOneQubit[] = {
                    GateKind::H, GateKind::T, GateKind::X};
                mod.addGate(kOneQubit[rng() % 3], {qs[rng() % nq]});
            }
        }
        MultiSimdArch arch(k, d, 0);
        SCOPED_TRACE("trial " + std::to_string(trial) + " k=" +
                     std::to_string(k) + " d=" + std::to_string(d));
        const uint64_t lb = computeLeafBounds(mod, arch).composite();
        const uint64_t fallback =
            lpfs.schedule(mod, arch).computeTimesteps();
        const uint64_t heuristic_best = std::min(
            fallback, rcp.schedule(mod, arch).computeTimesteps());

        OptScheduler::Options options;
        options.commMode = CommMode::None;
        options.nodeBudget = 20'000;
        OptScheduler opt(options);
        ScheduleAttempt attempt;
        LeafSchedule sched = opt.scheduleWithAttempt(mod, arch, attempt);
        const uint64_t steps = sched.computeTimesteps();

        EXPECT_TRUE(validateLeafSchedule(sched, arch));
        EXPECT_EQ(sched.scheduledOps(), mod.numOps());
        EXPECT_GE(steps, lb);
        EXPECT_LE(steps, fallback); // never worse than the fallback tier
        if (attempt.provenance == ScheduleProvenance::Optimal) {
            ++proofs;
            EXPECT_EQ(steps, lb);
            EXPECT_LE(steps, heuristic_best);
            EXPECT_EQ(annotatedCycles(sched, arch, CommMode::None), lb);
        } else {
            ++fallbacks;
            EXPECT_EQ(attempt.provenance, ScheduleProvenance::Fallback);
            EXPECT_EQ(steps, fallback);
        }
    }
    // The generator must exercise both outcomes to mean anything.
    EXPECT_GT(proofs, 0u);
    EXPECT_GT(fallbacks, 0u);
}

// ---------------------------------------------------------------------
// Scheduler correctness fixes riding along.

TEST(SchedulerInputs, DuplicateOperandsRejected)
{
    // A gate naming the same qubit twice would double-count operand
    // touches in both the schedulers and the bound side. The IR layer
    // rejects it at construction (every mutation path funnels through
    // addGate); LeafScheduler::checkInputs carries an independent
    // second check so no future IR mutation path can smuggle one in.
    Module mod("dup");
    QubitId a = mod.addLocal("a");
    QubitId b = mod.addLocal("b");
    mod.addGate(GateKind::CNOT, {a, b});
    EXPECT_THROW(mod.addGate(GateKind::CNOT, {a, a}), PanicError);
    EXPECT_THROW(mod.addGate(GateKind::CZ, {b, b}), PanicError);
    // The module stays valid and schedulable after the rejected adds.
    MultiSimdArch arch(2, 2, 0);
    EXPECT_EQ(RcpScheduler().schedule(mod, arch).computeTimesteps(), 1u);
}

TEST(TieBreak, QubitRelabelingDoesNotChangePlacements)
{
    // The same DAG expressed over two different qubit-ID labelings must
    // schedule identically op-for-op: ties break on op index, never on
    // qubit IDs. The permuted module allocates its qubits in reverse
    // order, so every QubitId differs while the op list (and therefore
    // the dependence DAG) is unchanged.
    auto build = [](bool reversed) {
        Module mod("relabel");
        std::vector<QubitId> ids(6);
        if (reversed) {
            for (int i = 5; i >= 0; --i)
                ids[i] = mod.addLocal("q" + std::to_string(i));
        } else {
            for (int i = 0; i < 6; ++i)
                ids[i] = mod.addLocal("q" + std::to_string(i));
        }
        mod.addGate(GateKind::H, {ids[0]});
        mod.addGate(GateKind::H, {ids[1]});
        mod.addGate(GateKind::CNOT, {ids[0], ids[2]});
        mod.addGate(GateKind::T, {ids[3]});
        mod.addGate(GateKind::T, {ids[4]});
        mod.addGate(GateKind::CNOT, {ids[1], ids[5]});
        mod.addGate(GateKind::H, {ids[2]});
        mod.addGate(GateKind::H, {ids[5]});
        mod.addGate(GateKind::T, {ids[0]});
        mod.addGate(GateKind::T, {ids[1]});
        return mod;
    };
    Module plain = build(false);
    Module reversed = build(true);
    MultiSimdArch arch(2, 2, 0);
    RcpScheduler rcp;
    LpfsScheduler lpfs;
    EXPECT_EQ(opPlacements(rcp.schedule(plain, arch)),
              opPlacements(rcp.schedule(reversed, arch)));
    EXPECT_EQ(opPlacements(lpfs.schedule(plain, arch)),
              opPlacements(lpfs.schedule(reversed, arch)));
}

TEST(TieBreak, LowestOpIndexWinsAmongEqualPriorities)
{
    // Four identical independent gates, room for two per step: the tie
    // must resolve to ascending op index, steps {0,1} then {2,3}.
    Module mod = parallelH(4);
    MultiSimdArch arch(2, 1, 0);
    RcpScheduler rcp;
    LpfsScheduler lpfs;
    for (const LeafScheduler *sched :
         std::initializer_list<const LeafScheduler *>{&rcp, &lpfs}) {
        auto placements = opPlacements(sched->schedule(mod, arch));
        ASSERT_EQ(placements.size(), 4u);
        EXPECT_EQ(placements[0].first, 0u);
        EXPECT_EQ(placements[1].first, 0u);
        EXPECT_EQ(placements[2].first, 1u);
        EXPECT_EQ(placements[3].first, 1u);
    }
}

// ---------------------------------------------------------------------
// B007: a false optimality certificate is an error, never valid output.

TEST(BoundChecker, FalseOptimalCertificateTripsB007)
{
    Program prog;
    ModuleId chain = prog.addModule("chain");
    {
        Module &mod = prog.module(chain);
        QubitId q = mod.addLocal("q");
        for (int i = 0; i < 4; ++i)
            mod.addGate(GateKind::H, {q});
    }
    prog.setEntry(chain);

    // An honest (but slow) 6-step schedule of a 4-step chain...
    ProgramSchedule psched;
    psched.modules.resize(1);
    psched.modules[0].analyzed = true;
    psched.modules[0].leaf = true;
    psched.modules[0].dims = {{1, 6}};
    psched.totalCycles = 6;
    {
        DiagnosticEngine diags;
        EXPECT_TRUE(checkScheduleBounds(prog, psched, MultiSimdArch(1),
                                        CommMode::None, diags));
        EXPECT_FALSE(diags.has(DiagCode::BoundOptimalGapNotOne));
    }

    // ...becomes a checker error the moment it claims to be optimal.
    psched.modules[0].provenance = ScheduleProvenance::Optimal;
    {
        DiagnosticEngine diags;
        ProgramGapReport report;
        EXPECT_FALSE(checkScheduleBounds(prog, psched, MultiSimdArch(1),
                                         CommMode::None, diags,
                                         &report));
        EXPECT_TRUE(diags.has(DiagCode::BoundOptimalGapNotOne));
        ASSERT_EQ(report.leaves.size(), 1u);
        EXPECT_EQ(report.leaves[0].provenance,
                  ScheduleProvenance::Optimal);
        EXPECT_GT(report.leaves[0].gap, 1.0);
    }

    // A genuinely bound-tight optimal claim stays clean.
    psched.modules[0].dims = {{1, 4}};
    psched.totalCycles = 4;
    {
        DiagnosticEngine diags;
        EXPECT_TRUE(checkScheduleBounds(prog, psched, MultiSimdArch(1),
                                        CommMode::None, diags));
        EXPECT_FALSE(diags.has(DiagCode::BoundOptimalGapNotOne));
    }
}

// ---------------------------------------------------------------------
// Determinism: the opt tier through the full toolflow.

ToolflowResult
runOptToolflow(const std::string &short_name, unsigned num_threads,
               bool cache)
{
    auto spec =
        workloads::findWorkload(workloads::tinyParams(), short_name);
    Program prog = spec.build();
    ToolflowConfig config;
    config.scheduler = SchedulerKind::Opt;
    config.arch = MultiSimdArch(4, unbounded, 0);
    config.commMode = CommMode::None; // the certificate-friendly regime
    config.optOptions.nodeBudget = 2'000;
    config.rotations = Toolflow::rotationPresetFor(short_name);
    config.numThreads = num_threads;
    config.leafCache = cache;
    return Toolflow(config).run(prog);
}

TEST(DeterminismOpt, ThreadCountAndCacheInvariance)
{
    for (const char *workload : {"tfp", "grovers"}) {
        ToolflowResult baseline = runOptToolflow(workload, 1, false);
        // At the widest width the bound is attainable here: at least
        // one leaf must carry a real certificate through the toolflow.
        bool any_optimal = false;
        for (const ModuleScheduleInfo &info : baseline.schedule.modules)
            if (info.analyzed && info.leaf &&
                info.provenance == ScheduleProvenance::Optimal)
                any_optimal = true;
        EXPECT_TRUE(any_optimal) << workload;

        struct Config
        {
            unsigned threads;
            bool cache;
        };
        for (Config config : {Config{2, false}, Config{8, false},
                              Config{1, true}, Config{8, true}}) {
            ToolflowResult other =
                runOptToolflow(workload, config.threads, config.cache);
            std::string context = std::string(workload) + " threads=" +
                                  std::to_string(config.threads) +
                                  (config.cache ? " cache" : "");
            EXPECT_EQ(baseline.scheduledCycles, other.scheduledCycles)
                << context;
            ASSERT_EQ(baseline.schedule.modules.size(),
                      other.schedule.modules.size())
                << context;
            EXPECT_EQ(baseline.schedule.totalCycles,
                      other.schedule.totalCycles)
                << context;
            for (size_t i = 0; i < baseline.schedule.modules.size();
                 ++i) {
                const ModuleScheduleInfo &ma =
                    baseline.schedule.modules[i];
                const ModuleScheduleInfo &mb = other.schedule.modules[i];
                SCOPED_TRACE(context + ", module " + std::to_string(i));
                ASSERT_EQ(ma.analyzed, mb.analyzed);
                if (!ma.analyzed)
                    continue;
                EXPECT_EQ(ma.provenance, mb.provenance);
                ASSERT_EQ(ma.dims.size(), mb.dims.size());
                for (size_t dim = 0; dim < ma.dims.size(); ++dim) {
                    EXPECT_EQ(ma.dims[dim].width, mb.dims[dim].width);
                    EXPECT_EQ(ma.dims[dim].length, mb.dims[dim].length);
                }
                EXPECT_EQ(ma.comm.totalCycles, mb.comm.totalCycles);
            }
        }
    }
}

} // namespace
