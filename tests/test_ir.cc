/**
 * @file
 * Unit tests for the IR: gate metadata, modules, programs, dependence DAGs
 * and the textual printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ir/dag.hh"
#include "ir/printer.hh"
#include "ir/program.hh"
#include "support/logging.hh"

namespace {

using namespace msq;

TEST(Gate, NamesRoundTrip)
{
    for (size_t i = 0; i < numGateKinds; ++i) {
        auto kind = static_cast<GateKind>(i);
        GateKind parsed;
        ASSERT_TRUE(parseGateName(gateName(kind), parsed)) << gateName(kind);
        EXPECT_EQ(parsed, kind);
    }
}

TEST(Gate, UnknownNameRejected)
{
    GateKind kind;
    EXPECT_FALSE(parseGateName("NOPE", kind));
}

TEST(Gate, Arity)
{
    EXPECT_EQ(gateArity(GateKind::H), 1);
    EXPECT_EQ(gateArity(GateKind::CNOT), 2);
    EXPECT_EQ(gateArity(GateKind::Toffoli), 3);
    EXPECT_EQ(gateArity(GateKind::Call), -1);
}

TEST(Gate, Classification)
{
    EXPECT_TRUE(isRotationGate(GateKind::Rz));
    EXPECT_FALSE(isRotationGate(GateKind::T));
    EXPECT_TRUE(isPrimitiveGate(GateKind::CNOT));
    EXPECT_FALSE(isPrimitiveGate(GateKind::Toffoli));
    EXPECT_TRUE(isMeasureGate(GateKind::MeasZ));
    EXPECT_FALSE(isMeasureGate(GateKind::PrepZ));
}

TEST(Gate, Dagger)
{
    EXPECT_EQ(daggerOf(GateKind::T), GateKind::Tdag);
    EXPECT_EQ(daggerOf(GateKind::Sdag), GateKind::S);
    EXPECT_EQ(daggerOf(GateKind::H), GateKind::H);
    EXPECT_EQ(daggerOf(GateKind::CNOT), GateKind::CNOT);
    EXPECT_THROW(daggerOf(GateKind::MeasZ), PanicError);
}

TEST(Module, QubitTables)
{
    Module mod("m");
    QubitId a = mod.addParam("a");
    QubitId b = mod.addParam("b");
    QubitId anc = mod.addLocal("anc");
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(anc, 2u);
    EXPECT_EQ(mod.numParams(), 2u);
    EXPECT_EQ(mod.numQubits(), 3u);
    EXPECT_EQ(mod.qubitName(anc), "anc");
}

TEST(Module, ParamAfterLocalPanics)
{
    Module mod("m");
    mod.addLocal("x");
    EXPECT_THROW(mod.addParam("p"), PanicError);
}

TEST(Module, RegisterNaming)
{
    Module mod("m");
    auto reg = mod.addRegister("r", 3);
    ASSERT_EQ(reg.size(), 3u);
    EXPECT_EQ(mod.qubitName(reg[1]), "r[1]");
}

TEST(Module, GateArityChecked)
{
    Module mod("m");
    auto reg = mod.addRegister("r", 3);
    EXPECT_THROW(mod.addGate(GateKind::CNOT, {reg[0]}), PanicError);
    EXPECT_THROW(mod.addGate(GateKind::H, {reg[0], reg[1]}), PanicError);
}

TEST(Module, DuplicateOperandPanics)
{
    Module mod("m");
    auto reg = mod.addRegister("r", 2);
    EXPECT_THROW(mod.addGate(GateKind::CNOT, {reg[0], reg[0]}), PanicError);
}

TEST(Module, OutOfRangeOperandPanics)
{
    Module mod("m");
    mod.addLocal("x");
    EXPECT_THROW(mod.addGate(GateKind::H, {5}), PanicError);
}

TEST(Module, LeafDetection)
{
    Program prog;
    ModuleId callee_id = prog.addModule("leaf");
    prog.module(callee_id).addParam("q");
    prog.module(callee_id).addGate(GateKind::H, {0});

    ModuleId caller_id = prog.addModule("caller");
    prog.module(caller_id).addLocal("x");
    prog.module(caller_id).addCall(callee_id, {0});

    EXPECT_TRUE(prog.module(callee_id).isLeaf());
    EXPECT_FALSE(prog.module(caller_id).isLeaf());
    EXPECT_EQ(prog.module(caller_id).localGateCount(), 0u);
    EXPECT_EQ(prog.module(callee_id).localGateCount(), 1u);
}

TEST(Program, DuplicateModuleNameFatal)
{
    Program prog;
    prog.addModule("m");
    EXPECT_THROW(prog.addModule("m"), FatalError);
}

TEST(Program, FindModule)
{
    Program prog;
    ModuleId id = prog.addModule("m");
    EXPECT_EQ(prog.findModule("m"), id);
    EXPECT_EQ(prog.findModule("nope"), invalidModule);
}

TEST(Program, ValidateRequiresEntry)
{
    Program prog;
    prog.addModule("m");
    EXPECT_THROW(prog.validate(), FatalError);
}

TEST(Program, ValidateChecksCallArity)
{
    Program prog;
    ModuleId leaf = prog.addModule("leaf");
    prog.module(leaf).addParam("a");
    prog.module(leaf).addParam("b");
    ModuleId top = prog.addModule("top");
    prog.module(top).addLocal("x");
    prog.module(top).addCall(leaf, {0}); // wrong arity
    prog.setEntry(top);
    EXPECT_THROW(prog.validate(), FatalError);
}

TEST(Program, RecursionRejected)
{
    Program prog;
    ModuleId a = prog.addModule("a");
    ModuleId b = prog.addModule("b");
    prog.module(a).addLocal("q");
    prog.module(b).addParam("q");
    prog.module(a).addCall(b, {0});
    prog.module(b).addCall(a, {});
    prog.setEntry(a);
    EXPECT_THROW(prog.validate(), FatalError);
}

TEST(Program, BottomUpOrderPutsCalleesFirst)
{
    Program prog;
    ModuleId leaf = prog.addModule("leaf");
    prog.module(leaf).addParam("q");
    prog.module(leaf).addGate(GateKind::T, {0});
    ModuleId mid = prog.addModule("mid");
    prog.module(mid).addParam("q");
    prog.module(mid).addCall(leaf, {0});
    ModuleId top = prog.addModule("top");
    prog.module(top).addLocal("q");
    prog.module(top).addCall(mid, {0});
    prog.setEntry(top);

    auto order = prog.bottomUpOrder();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], leaf);
    EXPECT_EQ(order[1], mid);
    EXPECT_EQ(order[2], top);
}

TEST(Program, UnreachableModulesExcluded)
{
    Program prog;
    ModuleId top = prog.addModule("top");
    prog.module(top).addLocal("q");
    prog.module(top).addGate(GateKind::H, {0});
    prog.addModule("orphan");
    prog.setEntry(top);
    EXPECT_EQ(prog.reachableModules().size(), 1u);
}

// --- Dependence DAG ---

// Build a small diamond: H(a); H(b); CNOT(a,b); T(b).
Module
diamondModule()
{
    Module mod("diamond");
    mod.addLocal("a");
    mod.addLocal("b");
    mod.addGate(GateKind::H, {0});
    mod.addGate(GateKind::H, {1});
    mod.addGate(GateKind::CNOT, {0, 1});
    mod.addGate(GateKind::T, {1});
    return mod;
}

TEST(DepDag, StructureOfDiamond)
{
    Module mod = diamondModule();
    DepDag dag = DepDag::build(mod);
    ASSERT_EQ(dag.numNodes(), 4u);
    EXPECT_EQ(dag.roots().size(), 2u);
    EXPECT_EQ(dag.succs(0), std::vector<uint32_t>{2});
    EXPECT_EQ(dag.succs(1), std::vector<uint32_t>{2});
    EXPECT_EQ(dag.succs(2), std::vector<uint32_t>{3});
    EXPECT_TRUE(dag.succs(3).empty());
    EXPECT_EQ(dag.preds(2).size(), 2u);
}

TEST(DepDag, NoDuplicateEdgeForSharedPair)
{
    // Two consecutive CNOTs on the same pair must yield a single edge.
    Module mod("m");
    mod.addLocal("a");
    mod.addLocal("b");
    mod.addGate(GateKind::CNOT, {0, 1});
    mod.addGate(GateKind::CNOT, {0, 1});
    DepDag dag = DepDag::build(mod);
    EXPECT_EQ(dag.succs(0).size(), 1u);
    EXPECT_EQ(dag.preds(1).size(), 1u);
}

TEST(DepDag, CriticalPath)
{
    Module mod = diamondModule();
    DepDag dag = DepDag::build(mod);
    EXPECT_EQ(dag.criticalPathLength(), 3u); // H -> CNOT -> T
}

TEST(DepDag, DepthAndHeight)
{
    Module mod = diamondModule();
    DepDag dag = DepDag::build(mod);
    auto depth = dag.depthFromTop();
    auto height = dag.heightToBottom();
    EXPECT_EQ(depth[0], 1u);
    EXPECT_EQ(depth[2], 2u);
    EXPECT_EQ(depth[3], 3u);
    EXPECT_EQ(height[0], 3u);
    EXPECT_EQ(height[3], 1u);
}

TEST(DepDag, SlackZeroOnCriticalPath)
{
    Module mod = diamondModule();
    DepDag dag = DepDag::build(mod);
    auto slack = dag.slack();
    // All four nodes lie on some longest path in the diamond.
    for (uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(slack[i], 0u) << "node " << i;
}

TEST(DepDag, SlackPositiveOffCriticalPath)
{
    Module mod("m");
    mod.addLocal("a");
    mod.addLocal("b");
    // Chain of 3 on a; single op on b.
    mod.addGate(GateKind::T, {0});
    mod.addGate(GateKind::T, {0});
    mod.addGate(GateKind::T, {0});
    mod.addGate(GateKind::H, {1});
    DepDag dag = DepDag::build(mod);
    auto slack = dag.slack();
    EXPECT_EQ(slack[0], 0u);
    EXPECT_EQ(slack[3], 2u);
}

TEST(DepDag, WeightFunctionRespected)
{
    Module mod("m");
    mod.addLocal("a");
    mod.addGate(GateKind::T, {0});
    mod.addGate(GateKind::T, {0});
    DepDag dag = DepDag::build(
        mod, [](const Operation &) -> uint64_t { return 10; });
    EXPECT_EQ(dag.criticalPathLength(), 20u);
}

TEST(DepDag, EmptyModule)
{
    Module mod("empty");
    DepDag dag = DepDag::build(mod);
    EXPECT_EQ(dag.numNodes(), 0u);
    EXPECT_EQ(dag.criticalPathLength(), 0u);
}

// --- Printer ---

TEST(Printer, ModuleDump)
{
    Program prog;
    ModuleId id = prog.addModule("m");
    Module &mod = prog.module(id);
    mod.addParam("q");
    mod.addLocal("anc");
    mod.addGate(GateKind::H, {0});
    mod.addGate(GateKind::CNOT, {0, 1});
    mod.addGate(GateKind::Rz, {1}, 0.25);
    prog.setEntry(id);

    std::ostringstream os;
    printModule(os, prog, mod);
    std::string text = os.str();
    EXPECT_NE(text.find("module m(qbit q)"), std::string::npos);
    EXPECT_NE(text.find("qbit anc;"), std::string::npos);
    EXPECT_NE(text.find("H(q);"), std::string::npos);
    EXPECT_NE(text.find("CNOT(q, anc);"), std::string::npos);
    EXPECT_NE(text.find("Rz(anc, 0.25);"), std::string::npos);
}

TEST(Printer, RepeatedCallDump)
{
    Program prog;
    ModuleId leaf = prog.addModule("leaf");
    prog.module(leaf).addParam("q");
    prog.module(leaf).addGate(GateKind::T, {0});
    ModuleId top = prog.addModule("top");
    prog.module(top).addLocal("x");
    prog.module(top).addCall(leaf, {0}, 5);
    prog.setEntry(top);

    std::ostringstream os;
    printProgram(os, prog);
    EXPECT_NE(os.str().find("repeat 5 leaf(x);"), std::string::npos);
}

} // namespace
