/**
 * @file
 * Tests for the state-vector simulator, and — more importantly — the
 * semantic validation it enables: the Toffoli/Fredkin/Swap expansions
 * are exact circuit identities, and the inverse-cancellation pass
 * preserves program meaning on randomized unitary circuits.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "passes/cancel_inverses.hh"
#include "passes/decompose_toffoli.hh"
#include "sim/statevector.hh"
#include "support/logging.hh"

namespace {

using namespace msq;

constexpr double tolerance = 1e-9;

SplitMix64
rngFor(uint64_t seed)
{
    return SplitMix64(seed);
}

TEST(StateVector, InitialState)
{
    StateVector sv(2);
    EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, tolerance);
    EXPECT_NEAR(std::abs(sv.amplitude(3)), 0.0, tolerance);
}

TEST(StateVector, RejectsSillySizes)
{
    EXPECT_THROW(StateVector(0), FatalError);
    EXPECT_THROW(StateVector(99), FatalError);
}

TEST(StateVector, HadamardMakesSuperposition)
{
    StateVector sv(1);
    auto rng = rngFor(1);
    sv.apply(Operation(GateKind::H, {0}), rng);
    EXPECT_NEAR(sv.probabilityOfOne(0), 0.5, tolerance);
    sv.apply(Operation(GateKind::H, {0}), rng);
    EXPECT_NEAR(sv.probabilityOfOne(0), 0.0, tolerance);
}

TEST(StateVector, BellState)
{
    StateVector sv(2);
    auto rng = rngFor(2);
    sv.apply(Operation(GateKind::H, {0}), rng);
    sv.apply(Operation(GateKind::CNOT, {0, 1}), rng);
    EXPECT_NEAR(std::abs(sv.amplitude(0b00)), 1 / std::sqrt(2.0),
                tolerance);
    EXPECT_NEAR(std::abs(sv.amplitude(0b11)), 1 / std::sqrt(2.0),
                tolerance);
    EXPECT_NEAR(std::abs(sv.amplitude(0b01)), 0.0, tolerance);
}

TEST(StateVector, TIsFourthRootOfZ)
{
    StateVector with_t(1);
    StateVector with_s(1);
    auto rng = rngFor(3);
    with_t.apply(Operation(GateKind::H, {0}), rng);
    with_s.apply(Operation(GateKind::H, {0}), rng);
    with_t.apply(Operation(GateKind::T, {0}), rng);
    with_t.apply(Operation(GateKind::T, {0}), rng);
    with_s.apply(Operation(GateKind::S, {0}), rng);
    EXPECT_TRUE(with_t.approxEqual(with_s, tolerance));
}

TEST(StateVector, RzMatchesTUpToPhase)
{
    // T = Rz(pi/4) up to global phase.
    StateVector a(1);
    StateVector b(1);
    auto rng = rngFor(4);
    a.apply(Operation(GateKind::H, {0}), rng);
    b.apply(Operation(GateKind::H, {0}), rng);
    a.apply(Operation(GateKind::T, {0}), rng);
    b.apply(Operation(GateKind::Rz, {0}, 3.14159265358979 / 4), rng);
    EXPECT_TRUE(a.approxEqual(b, 1e-8));
}

TEST(StateVector, MeasurementCollapses)
{
    StateVector sv(1);
    auto rng = rngFor(5);
    sv.apply(Operation(GateKind::H, {0}), rng);
    sv.apply(Operation(GateKind::MeasZ, {0}), rng);
    double p = sv.probabilityOfOne(0);
    EXPECT_TRUE(std::abs(p) < tolerance || std::abs(p - 1.0) < tolerance);
}

TEST(StateVector, PrepZResetsToZero)
{
    StateVector sv(1);
    auto rng = rngFor(6);
    sv.apply(Operation(GateKind::H, {0}), rng);
    sv.apply(Operation(GateKind::PrepZ, {0}), rng);
    EXPECT_NEAR(sv.probabilityOfOne(0), 0.0, tolerance);
}

// --- Circuit-identity validation of the decomposition pass ---

/** Prepare an arbitrary-ish 3-qubit state with a fixed gate prefix. */
void
scramble(StateVector &sv, SplitMix64 &rng)
{
    sv.apply(Operation(GateKind::H, {0}), rng);
    sv.apply(Operation(GateKind::T, {0}), rng);
    sv.apply(Operation(GateKind::H, {1}), rng);
    sv.apply(Operation(GateKind::CNOT, {0, 1}), rng);
    sv.apply(Operation(GateKind::Ry, {2}, 0.831), rng);
    sv.apply(Operation(GateKind::CNOT, {1, 2}), rng);
    sv.apply(Operation(GateKind::S, {2}), rng);
}

TEST(Decompositions, ToffoliExpansionIsExact)
{
    // Compare the native Toffoli against the paper Fig. 4 expansion on
    // a scrambled (entangled) 3-qubit state.
    StateVector native(3);
    StateVector expanded(3);
    auto rng1 = rngFor(7);
    auto rng2 = rngFor(7);
    scramble(native, rng1);
    scramble(expanded, rng2);

    native.apply(Operation(GateKind::Toffoli, {0, 1, 2}), rng1);
    std::vector<Operation> ops;
    DecomposeToffoliPass::expandToffoli(0, 1, 2, ops);
    for (const auto &op : ops)
        expanded.apply(op, rng2);

    EXPECT_TRUE(native.approxEqual(expanded, 1e-8));
}

TEST(Decompositions, SwapExpansionIsExact)
{
    StateVector native(3);
    StateVector expanded(3);
    auto rng1 = rngFor(8);
    auto rng2 = rngFor(8);
    scramble(native, rng1);
    scramble(expanded, rng2);

    native.apply(Operation(GateKind::Swap, {0, 2}), rng1);
    std::vector<Operation> ops;
    DecomposeToffoliPass::expandSwap(0, 2, ops);
    for (const auto &op : ops)
        expanded.apply(op, rng2);

    EXPECT_TRUE(native.approxEqual(expanded, 1e-8));
}

TEST(Decompositions, FredkinExpansionIsExact)
{
    StateVector native(3);
    StateVector expanded(3);
    auto rng1 = rngFor(9);
    auto rng2 = rngFor(9);
    scramble(native, rng1);
    scramble(expanded, rng2);

    native.apply(Operation(GateKind::Fredkin, {0, 1, 2}), rng1);
    std::vector<Operation> ops;
    DecomposeToffoliPass::expandFredkin(0, 1, 2, ops);
    for (const auto &op : ops)
        expanded.apply(op, rng2);

    EXPECT_TRUE(native.approxEqual(expanded, 1e-8));
}

// --- Semantics preservation of the optimizer ---

Module
randomUnitaryModule(uint64_t seed, unsigned qubits, unsigned ops,
                    bool plant_pairs)
{
    SplitMix64 rng(seed);
    Module mod("random");
    auto reg = mod.addRegister("q", qubits);
    const GateKind one_q[] = {GateKind::H, GateKind::T,    GateKind::Tdag,
                              GateKind::S, GateKind::Sdag, GateKind::X,
                              GateKind::Z, GateKind::Y};
    for (unsigned i = 0; i < ops; ++i) {
        if (qubits >= 2 && rng.nextBelow(100) < 30) {
            QubitId a = static_cast<QubitId>(rng.nextBelow(qubits));
            QubitId b = static_cast<QubitId>(rng.nextBelow(qubits));
            if (a == b)
                b = (b + 1) % qubits;
            mod.addGate(GateKind::CNOT, {a, b});
        } else {
            GateKind kind = one_q[rng.nextBelow(8)];
            QubitId a = static_cast<QubitId>(rng.nextBelow(qubits));
            mod.addGate(kind, {a});
            if (plant_pairs && rng.nextBelow(100) < 40) {
                // Plant an immediately-cancelling inverse pair.
                mod.addGate(kind, {a});
                mod.addGate(kind, {a});
            }
        }
    }
    return mod;
}

class OptimizerSemantics : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(OptimizerSemantics, CancelInversesPreservesState)
{
    uint64_t seed = GetParam();
    Module original = randomUnitaryModule(seed, 5, 120, true);

    Program prog;
    ModuleId id = prog.addModule("m");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 5);
    (void)reg;
    for (const auto &op : original.ops())
        mod.addOperation(op);
    prog.setEntry(id);
    CancelInversesPass pass;
    pass.run(prog);
    ASSERT_LT(prog.module(id).numOps(), original.numOps())
        << "planted pairs should cancel";

    StateVector before(5);
    StateVector after(5);
    auto rng1 = rngFor(seed);
    auto rng2 = rngFor(seed);
    before.run(original, rng1);
    after.run(prog.module(id), rng2);
    EXPECT_TRUE(before.approxEqual(after, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerSemantics,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

} // namespace
