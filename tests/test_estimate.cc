/**
 * @file
 * Tests for the schedule-summary static analysis
 * (analysis/schedule_summary.hh) and the E001-E006 estimate exactness
 * checker (verify/estimate_checker.hh).
 *
 * The analysis claims *exact* composition, so every test here compares
 * against independently computed ground truth: the streaming leaf fold
 * against the CommunicationAnalyzer, the repeat algebra against
 * hand-computed closed forms and against full workloads, and the
 * saturation contract against deliberately overflowing repeat counts.
 */

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "analysis/invocation_counts.hh"
#include "analysis/resource_estimator.hh"
#include "analysis/schedule_summary.hh"
#include "core/toolflow.hh"
#include "passes/decompose_toffoli.hh"
#include "passes/flatten.hh"
#include "passes/pass_manager.hh"
#include "sched/comm.hh"
#include "sched/lpfs.hh"
#include "sched/rcp.hh"
#include "support/diagnostic.hh"
#include "support/telemetry.hh"
#include "verify/estimate_checker.hh"
#include "workloads/workloads.hh"

namespace {

using namespace msq;

bool
hasCode(const DiagnosticEngine &diags, DiagCode code)
{
    for (const Diagnostic &d : diags.diagnostics())
        if (d.code == code)
            return true;
    return false;
}

/** A leaf whose schedule exercises teleports: chained CNOTs across
 * enough qubits that k=2 regions must exchange operands. */
Module
commHeavyLeaf(unsigned qubits, unsigned rounds)
{
    Module mod("commleaf");
    std::vector<QubitId> qs;
    for (unsigned i = 0; i < qubits; ++i)
        qs.push_back(mod.addLocal("q" + std::to_string(i)));
    for (unsigned r = 0; r < rounds; ++r)
        for (unsigned i = 0; i + 1 < qubits; ++i)
            mod.addGate(GateKind::CNOT, {qs[i], qs[i + 1]});
    return mod;
}

/** Fold vs annotator, field for field, for one (scheduler, mode). */
void
expectFoldMatchesAnnotator(const Module &mod, const LeafScheduler &sched,
                           const MultiSimdArch &arch, CommMode mode)
{
    LeafSchedule leaf = sched.schedule(mod, arch);
    CommunicationAnalyzer comm(arch, mode);
    CommStats ground = comm.annotate(leaf);
    ResourceSummary fold = summarizeLeafSchedule(leaf, arch.eprBandwidth);

    EXPECT_EQ(fold.serialCycles, ground.totalCycles);
    EXPECT_EQ(fold.teleportMoves, ground.teleportMoves);
    EXPECT_EQ(fold.blockingTeleports, ground.blockingTeleports);
    EXPECT_EQ(fold.localMoves, ground.localMoves);
    EXPECT_EQ(fold.stepsWithBlockingMove, ground.stepsWithBlockingMove);
    EXPECT_EQ(fold.stepsWithOnlyLocalMoves,
              ground.stepsWithOnlyLocalMoves);
    EXPECT_EQ(fold.activeRegionSteps, ground.activeRegionSteps);
    EXPECT_EQ(fold.operandTouches, ground.operandSlots);
    EXPECT_EQ(fold.peakRegionOccupancy, ground.peakRegionOccupancy);
    EXPECT_EQ(fold.peakBlockingMovesPerStep,
              ground.peakBlockingMovesPerStep);
    EXPECT_EQ(fold.gateOps, leaf.scheduledOps());
    EXPECT_EQ(fold.occupancySteps(), leaf.computeTimesteps());
    EXPECT_EQ(fold.eprPairs(), ground.teleportMoves);
    EXPECT_FALSE(fold.saturated);
}

// ---------------------------------------------------------------------
// The streaming leaf fold vs the CommunicationAnalyzer (E001's claim).
// ---------------------------------------------------------------------

TEST(LeafFold, MatchesAnnotatorGlobalMode)
{
    Module mod = commHeavyLeaf(8, 4);
    RcpScheduler rcp;
    LpfsScheduler lpfs;
    MultiSimdArch arch(2);
    expectFoldMatchesAnnotator(mod, rcp, arch, CommMode::Global);
    expectFoldMatchesAnnotator(mod, lpfs, arch, CommMode::Global);
}

TEST(LeafFold, MatchesAnnotatorLocalMemMode)
{
    Module mod = commHeavyLeaf(8, 4);
    RcpScheduler rcp;
    LpfsScheduler lpfs;
    MultiSimdArch arch(2, unbounded, /*localMemCapacity=*/4);
    expectFoldMatchesAnnotator(mod, rcp, arch,
                               CommMode::GlobalWithLocalMem);
    expectFoldMatchesAnnotator(mod, lpfs, arch,
                               CommMode::GlobalWithLocalMem);
}

TEST(LeafFold, MatchesAnnotatorUnderFiniteEprBandwidth)
{
    Module mod = commHeavyLeaf(10, 3);
    RcpScheduler rcp;
    MultiSimdArch arch(4);
    arch.eprBandwidth = 1;
    expectFoldMatchesAnnotator(mod, rcp, arch, CommMode::Global);
}

TEST(LeafFold, EmptyLeafFoldsToZero)
{
    Module mod("empty");
    mod.addLocal("q");
    RcpScheduler rcp;
    LeafSchedule leaf = rcp.schedule(mod, MultiSimdArch(2));
    ResourceSummary fold = summarizeLeafSchedule(leaf);
    EXPECT_EQ(fold.gateOps, 0u);
    EXPECT_EQ(fold.serialCycles, 0u);
    EXPECT_EQ(fold.commCycles, 0u);
    EXPECT_EQ(fold.teleportMoves, 0u);
    EXPECT_EQ(fold.occupancySteps(), 0u);
    EXPECT_EQ(fold.peakActiveRegions, 0u);
    EXPECT_FALSE(fold.saturated);
}

// ---------------------------------------------------------------------
// Composition through the repeat algebra: hand-computed closed forms.
// ---------------------------------------------------------------------

/** leaf (g gates) <- mid (2 gates + leaf x3) <- entry (mid x5). */
struct ThreeLevelProgram
{
    Program prog;
    ModuleId leaf, mid, entry;

    ThreeLevelProgram()
    {
        leaf = prog.addModule("leaf");
        Module &l = prog.module(leaf);
        QubitId lq = l.addLocal("q");
        l.addGate(GateKind::H, {lq});
        l.addGate(GateKind::T, {lq});

        mid = prog.addModule("mid");
        Module &m = prog.module(mid);
        QubitId mq = m.addLocal("q");
        m.addGate(GateKind::X, {mq});
        m.addGate(GateKind::X, {mq});
        m.addCall(leaf, {}, 3);

        entry = prog.addModule("entry");
        Module &e = prog.module(entry);
        e.addLocal("q");
        e.addCall(mid, {}, 5);
        prog.setEntry(entry);
    }
};

TEST(SummaryComposition, MatchesHandComputedClosedForm)
{
    ThreeLevelProgram tlp;
    RcpScheduler rcp;
    MultiSimdArch arch(2);
    const CommMode mode = CommMode::Global;

    ScheduleSummaryAnalysis analysis(
        tlp.prog, mode, [&](const Module &mod, ModuleId) {
            LeafSchedule sched = rcp.schedule(mod, arch);
            CommunicationAnalyzer(arch, mode).annotate(sched);
            return summarizeLeafSchedule(sched, arch.eprBandwidth);
        });

    const ResourceSummary &leaf = analysis.summary(tlp.leaf);
    const ResourceSummary &mid = analysis.summary(tlp.mid);
    const ResourceSummary &program = analysis.programSummary();

    const uint64_t gate_cost = MultiSimdArch::coarseGateCost(mode);
    const uint64_t call_oh = MultiSimdArch::callOverhead(mode);

    EXPECT_EQ(leaf.gateOps, 2u);
    EXPECT_EQ(mid.gateOps, 2 + 3 * leaf.gateOps);
    EXPECT_EQ(program.gateOps, 5 * mid.gateOps);

    EXPECT_EQ(mid.serialCycles,
              2 * gate_cost + 3 * (leaf.serialCycles + call_oh));
    EXPECT_EQ(program.serialCycles, 5 * (mid.serialCycles + call_oh));

    EXPECT_EQ(mid.callInvocations, 3u);
    EXPECT_EQ(program.callInvocations, 5 * (mid.callInvocations + 1));

    EXPECT_EQ(program.teleportMoves, 15 * leaf.teleportMoves);
    EXPECT_EQ(program.peakRegionOccupancy,
              std::max(leaf.peakRegionOccupancy,
                       mid.peakRegionOccupancy));

    // Occupancy histograms count leaf timesteps only and compose
    // linearly: mid already includes its three leaf runs, the program
    // five mid runs.
    ASSERT_EQ(program.occupancy.size(),
              ResourceSummary::numOccupancyBuckets());
    for (size_t b = 0; b < program.occupancy.size(); ++b) {
        EXPECT_EQ(mid.occupancy[b], 3 * leaf.occupancy[b]);
        EXPECT_EQ(program.occupancy[b], 5 * mid.occupancy[b]);
    }
    EXPECT_FALSE(analysis.saturated());
}

TEST(SummaryComposition, LocalContributionIdentityHolds)
{
    ThreeLevelProgram tlp;
    RcpScheduler rcp;
    MultiSimdArch arch(2);
    const CommMode mode = CommMode::Global;
    ScheduleSummaryAnalysis analysis(
        tlp.prog, mode, [&](const Module &mod, ModuleId) {
            LeafSchedule sched = rcp.schedule(mod, arch);
            CommunicationAnalyzer(arch, mode).annotate(sched);
            return summarizeLeafSchedule(sched, arch.eprBandwidth);
        });
    InvocationCountAnalysis invocations(tlp.prog);

    uint64_t gates = 0;
    uint64_t serial = 0;
    for (ModuleId id : analysis.analyzedModules()) {
        ResourceSummary local = analysis.localContribution(id);
        gates += invocations.invocations(id) * local.gateOps;
        serial += invocations.invocations(id) * local.serialCycles;
    }
    EXPECT_EQ(gates, analysis.programSummary().gateOps);
    EXPECT_EQ(serial, analysis.programSummary().serialCycles);
}

// ---------------------------------------------------------------------
// The estimate driver + exactness checker end to end.
// ---------------------------------------------------------------------

TEST(EstimateChecker, PassesOnHandBuiltProgram)
{
    ThreeLevelProgram tlp;
    RcpScheduler rcp;
    MultiSimdArch arch(2);

    ProgramResourceEstimate est = computeProgramEstimate(
        tlp.prog, arch, rcp, CommMode::Global);
    EXPECT_GT(est.makespanCycles, 0u);
    EXPECT_EQ(est.distinctLeafSchedules, 1u);
    EXPECT_EQ(est.leafModules, 1u);
    EXPECT_EQ(est.reachableModules, 3u);
    EXPECT_FALSE(est.saturated);

    DiagnosticEngine diags;
    EstimateCheckStats stats;
    EXPECT_TRUE(checkEstimateExactness(tlp.prog, arch, rcp,
                                       CommMode::Global, est, diags,
                                       {}, &stats));
    EXPECT_EQ(diags.numErrors(), 0u);
    EXPECT_EQ(stats.leafFoldsChecked, 1u);
    EXPECT_GE(stats.modulesChecked, 3u);
    EXPECT_TRUE(stats.unrolledChecked);
    EXPECT_FALSE(stats.saturated);
}

TEST(EstimateChecker, PerturbedMakespanTripsE002)
{
    ThreeLevelProgram tlp;
    RcpScheduler rcp;
    MultiSimdArch arch(2);
    ProgramResourceEstimate est = computeProgramEstimate(
        tlp.prog, arch, rcp, CommMode::Global);
    est.makespanCycles += 1;
    DiagnosticEngine diags;
    EXPECT_FALSE(checkEstimateExactness(tlp.prog, arch, rcp,
                                        CommMode::Global, est, diags));
    EXPECT_TRUE(hasCode(diags, DiagCode::EstimateMakespanMismatch));
}

TEST(EstimateChecker, PerturbedSummaryTripsE002)
{
    ThreeLevelProgram tlp;
    RcpScheduler rcp;
    MultiSimdArch arch(2);
    ProgramResourceEstimate est = computeProgramEstimate(
        tlp.prog, arch, rcp, CommMode::Global);
    est.program.gateOps += 1;
    DiagnosticEngine diags;
    EXPECT_FALSE(checkEstimateExactness(tlp.prog, arch, rcp,
                                        CommMode::Global, est, diags));
    EXPECT_TRUE(hasCode(diags, DiagCode::EstimateMakespanMismatch));
}

TEST(EstimateChecker, ZeroOpLeafUnderHugeRepeatStaysExact)
{
    Program prog;
    ModuleId leaf = prog.addModule("noop");
    prog.module(leaf).addLocal("q");
    ModuleId entry = prog.addModule("entry");
    prog.module(entry).addLocal("q");
    prog.module(entry).addCall(leaf, {}, 1'000'000'000'000ull);
    prog.setEntry(entry);

    RcpScheduler rcp;
    MultiSimdArch arch(2);
    ProgramResourceEstimate est = computeProgramEstimate(
        prog, arch, rcp, CommMode::Global);
    EXPECT_EQ(est.program.gateOps, 0u);
    // Each call still pays the flush overhead, nothing else.
    EXPECT_EQ(est.program.serialCycles,
              1'000'000'000'000ull *
                  MultiSimdArch::callOverhead(CommMode::Global));
    EXPECT_EQ(est.program.callInvocations, 1'000'000'000'000ull);
    EXPECT_FALSE(est.saturated);

    // The unrolled walk must abort on its op-visit budget (zero-gate
    // leaves still count one visit per invocation) without erroring.
    DiagnosticEngine diags;
    EstimateCheckStats stats;
    EXPECT_TRUE(checkEstimateExactness(prog, arch, rcp,
                                       CommMode::Global, est, diags,
                                       {}, &stats,
                                       /*materialize_budget=*/1000));
    EXPECT_FALSE(stats.unrolledChecked);
    EXPECT_EQ(diags.numErrors(), 0u);
}

// ---------------------------------------------------------------------
// Saturation contract: overflow poisons, warns, never false-alarms.
// ---------------------------------------------------------------------

TEST(EstimateChecker, SaturatedRepeatAlgebraPoisonsAndWarns)
{
    // 2^40 x 2^40 invocations of a one-gate leaf overflows uint64.
    Program prog;
    ModuleId leaf = prog.addModule("leaf");
    {
        Module &l = prog.module(leaf);
        QubitId q = l.addLocal("q");
        l.addGate(GateKind::H, {q});
    }
    ModuleId mid = prog.addModule("mid");
    prog.module(mid).addLocal("q");
    prog.module(mid).addCall(leaf, {}, uint64_t(1) << 40);
    ModuleId entry = prog.addModule("entry");
    prog.module(entry).addLocal("q");
    prog.module(entry).addCall(mid, {}, uint64_t(1) << 40);
    prog.setEntry(entry);

    RcpScheduler rcp;
    MultiSimdArch arch(2);
    DiagnosticEngine diags;
    EstimateOptions opts;
    opts.diags = &diags;
    ProgramResourceEstimate est = computeProgramEstimate(
        prog, arch, rcp, CommMode::Global, opts);

    // Poisoned, not silently capped: the flag is set and dependent
    // fields stick at 2^64-1.
    EXPECT_TRUE(est.saturated);
    EXPECT_TRUE(est.program.saturated);
    EXPECT_EQ(est.program.gateOps,
              std::numeric_limits<uint64_t>::max());
    EXPECT_EQ(est.program.serialCycles,
              std::numeric_limits<uint64_t>::max());
    EXPECT_EQ(est.program.computeCycles(), 0u);
    EXPECT_TRUE(hasCode(diags, DiagCode::EstimateSaturated));

    // The independent gate estimator must saturate in lockstep
    // (satellite cross-check: both sides use support/saturate.hh).
    ResourceEstimator estimator(prog);
    EXPECT_TRUE(estimator.saturated());
    EXPECT_EQ(estimator.programGates(),
              std::numeric_limits<uint64_t>::max());

    // Saturation downgrades exactness checks to the E006 warning; no
    // E001-E005 error may fire on clipped fields.
    DiagnosticEngine check_diags;
    EstimateCheckStats stats;
    EXPECT_TRUE(checkEstimateExactness(prog, arch, rcp,
                                       CommMode::Global, est,
                                       check_diags, {}, &stats));
    EXPECT_TRUE(stats.saturated);
    EXPECT_EQ(check_diags.numErrors(), 0u);
    EXPECT_TRUE(hasCode(check_diags, DiagCode::EstimateSaturated));
}

TEST(EstimateChecker, UnsaturatedHugeRepeatStaysExactBelowClip)
{
    // A repeat product just below 2^64 must compose without clipping.
    Program prog;
    ModuleId leaf = prog.addModule("leaf");
    {
        Module &l = prog.module(leaf);
        QubitId q = l.addLocal("q");
        l.addGate(GateKind::H, {q});
    }
    ModuleId entry = prog.addModule("entry");
    prog.module(entry).addLocal("q");
    prog.module(entry).addCall(leaf, {}, uint64_t(1) << 40);
    prog.setEntry(entry);

    RcpScheduler rcp;
    MultiSimdArch arch(2);
    ProgramResourceEstimate est = computeProgramEstimate(
        prog, arch, rcp, CommMode::Global);
    EXPECT_FALSE(est.saturated);
    EXPECT_EQ(est.program.gateOps, uint64_t(1) << 40);
    EXPECT_EQ(est.program.callInvocations, uint64_t(1) << 40);
}

// ---------------------------------------------------------------------
// scaleWorkload: totals scale exactly, distinct-module set does not.
// ---------------------------------------------------------------------

TEST(ScaleWorkload, ScalesEveryLinearFieldExactly)
{
    auto lowered = [] {
        Program prog = workloads::findWorkload(
                           workloads::scaledParams(), "tfp")
                           .build();
        PassManager passes;
        passes.add(std::make_unique<DecomposeToffoliPass>());
        passes.add(std::make_unique<RotationDecomposerPass>(
            Toolflow::rotationPresetFor("tfp")));
        passes.add(std::make_unique<FlattenPass>(30'000));
        passes.run(prog);
        return prog;
    };
    Program base = lowered();
    Program scaled = lowered();
    workloads::scaleWorkload(scaled, 1000);

    RcpScheduler rcp;
    MultiSimdArch arch(4);
    ProgramResourceEstimate b = computeProgramEstimate(
        base, arch, rcp, CommMode::Global);
    ProgramResourceEstimate s = computeProgramEstimate(
        scaled, arch, rcp, CommMode::Global);

    EXPECT_EQ(s.program.gateOps, 1000 * b.program.gateOps);
    EXPECT_EQ(s.program.teleportMoves, 1000 * b.program.teleportMoves);
    EXPECT_EQ(s.program.serialCycles,
              1000 * (b.program.serialCycles +
                      MultiSimdArch::callOverhead(CommMode::Global)));
    EXPECT_EQ(s.distinctLeafSchedules, b.distinctLeafSchedules);
    EXPECT_EQ(s.reachableModules, b.reachableModules + 1);

    DiagnosticEngine diags;
    EXPECT_TRUE(checkEstimateExactness(scaled, arch, rcp,
                                       CommMode::Global, s, diags));
}

TEST(ScaleWorkload, FactorOneIsNoOp)
{
    Program prog = workloads::findWorkload(workloads::scaledParams(),
                                           "tfp")
                       .build();
    const size_t modules_before = prog.reachableModules().size();
    workloads::scaleWorkload(prog, 1);
    EXPECT_EQ(prog.reachableModules().size(), modules_before);
}

// ---------------------------------------------------------------------
// All eight workloads x RCP/LPFS: exactness + ResourceEstimator
// cross-check at full pipeline fidelity (the acceptance criterion).
// ---------------------------------------------------------------------

TEST(EstimateWorkloads, AllEightExactUnderBothSchedulers)
{
    MultiSimdArch arch(4);
    for (const auto &spec : workloads::scaledParams()) {
        Program prog = spec.build();
        PassManager passes;
        passes.add(std::make_unique<DecomposeToffoliPass>());
        passes.add(std::make_unique<RotationDecomposerPass>(
            Toolflow::rotationPresetFor(spec.shortName)));
        passes.add(std::make_unique<FlattenPass>(30'000));
        passes.run(prog);

        const uint64_t independent_gates =
            ResourceEstimator(prog).programGates();

        for (SchedulerKind kind :
             {SchedulerKind::Rcp, SchedulerKind::Lpfs}) {
            SCOPED_TRACE(spec.shortName + std::string("/") +
                         schedulerKindName(kind));
            auto scheduler = Toolflow::makeScheduler(kind);
            ProgramResourceEstimate est = computeProgramEstimate(
                prog, arch, *scheduler, CommMode::Global);
            EXPECT_EQ(est.program.gateOps, independent_gates);
            EXPECT_GT(est.makespanCycles, 0u);

            DiagnosticEngine diags;
            EXPECT_TRUE(checkEstimateExactness(prog, arch, *scheduler,
                                               CommMode::Global, est,
                                               diags));
            EXPECT_EQ(diags.numErrors(), 0u);
        }
    }
}

// ---------------------------------------------------------------------
// Telemetry contract: estimate.* counters and the phase span.
// ---------------------------------------------------------------------

TEST(EstimateTelemetry, RecordsCountersAndPhaseTiming)
{
    ThreeLevelProgram tlp;
    RcpScheduler rcp;
    MultiSimdArch arch(2);
    MetricsRegistry metrics;
    EstimateOptions opts;
    opts.metrics = &metrics;
    computeProgramEstimate(tlp.prog, arch, rcp, CommMode::Global, opts);
    computeProgramEstimate(tlp.prog, arch, rcp, CommMode::Global, opts);

    EXPECT_EQ(metrics.counter("estimate.runs").value(), 2u);
    EXPECT_EQ(
        metrics.counter("estimate.distinct_leaf_schedules").value(), 2u);
    EXPECT_EQ(metrics.counter("estimate.saturated_runs").value(), 0u);
    EXPECT_EQ(metrics.distribution("toolflow.estimate_ms")
                  .samples()
                  .size(),
              2u);
    EXPECT_EQ(metrics.distribution("estimate.program_gates")
                  .samples()
                  .size(),
              2u);
}

} // anonymous namespace
