/**
 * @file
 * Tests for the fine-grained schedulers (sequential, RCP, LPFS) and the
 * schedule validator, including the paper's Fig. 4 example.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "passes/decompose_toffoli.hh"
#include "sched/lpfs.hh"
#include "sched/rcp.hh"
#include "sched/validator.hh"
#include "support/logging.hh"

namespace {

using namespace msq;

Module
parallelH(unsigned n)
{
    Module mod("h");
    auto reg = mod.addRegister("q", n);
    for (QubitId q : reg)
        mod.addGate(GateKind::H, {q});
    return mod;
}

/** Two dependent Toffolis sharing input a, decomposed — paper Fig. 4. */
Module
fig4Module()
{
    Module mod("fig4");
    QubitId a = mod.addLocal("a");
    QubitId b = mod.addLocal("b");
    QubitId c = mod.addLocal("c");
    QubitId d = mod.addLocal("d");
    QubitId e = mod.addLocal("e");
    std::vector<Operation> ops;
    DecomposeToffoliPass::expandToffoli(a, b, c, ops);
    DecomposeToffoliPass::expandToffoli(a, d, e, ops);
    for (auto &op : ops)
        mod.addOperation(std::move(op));
    return mod;
}

TEST(Sequential, OneOpPerStep)
{
    Module mod = parallelH(5);
    SequentialScheduler sched;
    LeafSchedule out = sched.schedule(mod, MultiSimdArch(4));
    EXPECT_EQ(out.computeTimesteps(), 5u);
    EXPECT_EQ(out.width(), 1u);
    validateLeafSchedule(out, MultiSimdArch(4));
}

TEST(Sequential, RejectsNonLeaf)
{
    Program prog;
    ModuleId leaf = prog.addModule("leaf");
    prog.module(leaf).addParam("q");
    ModuleId top = prog.addModule("top");
    prog.module(top).addLocal("q");
    prog.module(top).addCall(leaf, {0});
    SequentialScheduler sched;
    EXPECT_THROW(sched.schedule(prog.module(top), MultiSimdArch(4)),
                 PanicError);
}

TEST(Sequential, RejectsCompositeGates)
{
    Module mod("m");
    auto reg = mod.addRegister("q", 3);
    mod.addGate(GateKind::Toffoli, {reg[0], reg[1], reg[2]});
    SequentialScheduler sched;
    EXPECT_THROW(sched.schedule(mod, MultiSimdArch(4)), PanicError);
}

template <typename Scheduler>
class FineSchedulerTest : public ::testing::Test
{
  public:
    Scheduler scheduler;
};

using FineSchedulers = ::testing::Types<RcpScheduler, LpfsScheduler>;
TYPED_TEST_SUITE(FineSchedulerTest, FineSchedulers);

TYPED_TEST(FineSchedulerTest, DataParallelismInOneStep)
{
    // n independent H gates: with d = inf they fit one timestep.
    Module mod = parallelH(10);
    LeafSchedule out = this->scheduler.schedule(mod, MultiSimdArch(4));
    EXPECT_EQ(out.computeTimesteps(), 1u);
    validateLeafSchedule(out, MultiSimdArch(4));
}

TYPED_TEST(FineSchedulerTest, DLimitSplitsGroups)
{
    // 10 H gates, d = 3, k = 1: ceil(10/3) = 4 timesteps.
    Module mod = parallelH(10);
    MultiSimdArch arch(1, 3);
    LeafSchedule out = this->scheduler.schedule(mod, arch);
    EXPECT_EQ(out.computeTimesteps(), 4u);
    validateLeafSchedule(out, arch);
}

TYPED_TEST(FineSchedulerTest, SerialChainTakesChainLength)
{
    Module mod("chain");
    QubitId q = mod.addLocal("q");
    for (int i = 0; i < 20; ++i)
        mod.addGate(i % 2 ? GateKind::T : GateKind::H, {q});
    LeafSchedule out = this->scheduler.schedule(mod, MultiSimdArch(4));
    EXPECT_EQ(out.computeTimesteps(), 20u);
    validateLeafSchedule(out, MultiSimdArch(4));
}

TYPED_TEST(FineSchedulerTest, MixedTypesNeedTwoRegionsOrSteps)
{
    // 5 H and 5 T on distinct qubits: k=2 -> 1 step; k=1 -> 2 steps.
    Module mod("mixed");
    auto reg = mod.addRegister("q", 10);
    for (int i = 0; i < 5; ++i)
        mod.addGate(GateKind::H, {reg[i]});
    for (int i = 5; i < 10; ++i)
        mod.addGate(GateKind::T, {reg[i]});
    LeafSchedule two = this->scheduler.schedule(mod, MultiSimdArch(2));
    EXPECT_EQ(two.computeTimesteps(), 1u);
    LeafSchedule one = this->scheduler.schedule(mod, MultiSimdArch(1));
    EXPECT_EQ(one.computeTimesteps(), 2u);
    validateLeafSchedule(two, MultiSimdArch(2));
    validateLeafSchedule(one, MultiSimdArch(1));
}

TYPED_TEST(FineSchedulerTest, EmptyModule)
{
    Module mod("empty");
    LeafSchedule out = this->scheduler.schedule(mod, MultiSimdArch(2));
    EXPECT_EQ(out.computeTimesteps(), 0u);
}

TYPED_TEST(FineSchedulerTest, RespectsDependences)
{
    // Diamond + tail across 3 qubits, k = 2.
    Module mod("m");
    auto reg = mod.addRegister("q", 3);
    mod.addGate(GateKind::H, {reg[0]});
    mod.addGate(GateKind::H, {reg[1]});
    mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
    mod.addGate(GateKind::CNOT, {reg[1], reg[2]});
    mod.addGate(GateKind::T, {reg[2]});
    MultiSimdArch arch(2);
    LeafSchedule out = this->scheduler.schedule(mod, arch);
    validateLeafSchedule(out, arch);
    EXPECT_GE(out.computeTimesteps(), 4u); // critical path
}

TYPED_TEST(FineSchedulerTest, Fig4FusedBeatsModular)
{
    // Paper Fig. 4: the fused (flattened) pair of dependent Toffolis
    // schedules in ~21 cycles at k=2 versus 24 for the modular
    // (blackboxed) version.
    Module fused = fig4Module();
    MultiSimdArch arch(2);
    LeafSchedule out = this->scheduler.schedule(fused, arch);
    validateLeafSchedule(out, arch);

    // Single decomposed Toffoli at k=2: 12 cycles (Fig. 4 left).
    Module single("single");
    QubitId a = single.addLocal("a");
    QubitId b = single.addLocal("b");
    QubitId c = single.addLocal("c");
    std::vector<Operation> ops;
    DecomposeToffoliPass::expandToffoli(a, b, c, ops);
    for (auto &op : ops)
        single.addOperation(std::move(op));
    LeafSchedule single_out = this->scheduler.schedule(single, arch);
    validateLeafSchedule(single_out, arch);
    EXPECT_EQ(single_out.computeTimesteps(), 12u);

    uint64_t modular = 2 * single_out.computeTimesteps();
    EXPECT_LT(out.computeTimesteps(), modular);
    EXPECT_GE(out.computeTimesteps(), 21u); // DAG critical path bound
}

TEST(Lpfs, ZeroLFatal)
{
    Module mod = parallelH(2);
    LpfsScheduler::Options options;
    options.l = 0;
    LpfsScheduler sched(options);
    EXPECT_THROW(sched.schedule(mod, MultiSimdArch(2)), FatalError);
}

TEST(Lpfs, LClampedToK)
{
    // The width sweep schedules leaves on narrower sub-machines; l is
    // clamped rather than rejected.
    Module mod = parallelH(4);
    LpfsScheduler::Options options;
    options.l = 3;
    LpfsScheduler sched(options);
    MultiSimdArch arch(2);
    LeafSchedule out = sched.schedule(mod, arch);
    validateLeafSchedule(out, arch);
    EXPECT_EQ(out.scheduledOps(), mod.numOps());
}

TEST(Lpfs, OptionsOffStillValid)
{
    Module mod = fig4Module();
    LpfsScheduler::Options options;
    options.simd = false;
    options.refill = false;
    LpfsScheduler sched(options);
    MultiSimdArch arch(2);
    LeafSchedule out = sched.schedule(mod, arch);
    validateLeafSchedule(out, arch);
    EXPECT_EQ(out.scheduledOps(), mod.numOps());
}

TEST(Lpfs, MultiplePathRegions)
{
    Module mod = fig4Module();
    LpfsScheduler::Options options;
    options.l = 2;
    LpfsScheduler sched(options);
    MultiSimdArch arch(3);
    LeafSchedule out = sched.schedule(mod, arch);
    validateLeafSchedule(out, arch);
    EXPECT_EQ(out.scheduledOps(), mod.numOps());
}

TEST(Lpfs, FiniteDWideOpDoesNotStarveSmallerOps)
{
    // Regression: fillWithType used to stop at the first ready op whose
    // qubit count exceeded the remaining d-budget, so one wide op at
    // the front of the ready list starved smaller same-kind ops queued
    // behind it. Same-kind ops of different widths only arise through
    // raw (pass-synthesized) operations, so build the module that way:
    //   op0: X q0        (taken as the path op; budget 3 -> 2)
    //   op1: X q1 q2 q3  (needs 3 > 2: must be skipped, not a stop)
    //   op2: X q4        (fits; must ride along in the same slot)
    Module mod("wide");
    mod.addRegister("q", 5);
    mod.addRawOperation(Operation(GateKind::X, {0}));
    mod.addRawOperation(Operation(GateKind::X, {1, 2, 3}));
    mod.addRawOperation(Operation(GateKind::X, {4}));

    LpfsScheduler sched;
    MultiSimdArch arch(1, 3);
    LeafSchedule out = sched.schedule(mod, arch);
    EXPECT_EQ(out.scheduledOps(), mod.numOps());

    // The first timestep's slot must be filled with both 1-qubit ops.
    ASSERT_GE(out.computeTimesteps(), 1u);
    ASSERT_EQ(out.step(0).activeRegions(), 1u);
    RegionSlotView slot = out.step(0).slot(0);
    EXPECT_EQ(slot.region(), 0u);
    OpSpan ops = slot.ops();
    EXPECT_EQ(std::vector<uint32_t>(ops.begin(), ops.end()),
              (std::vector<uint32_t>{0, 2}));
    EXPECT_EQ(out.computeTimesteps(), 2u);
}

TEST(Rcp, WeightsConfigurable)
{
    // Zero op-weight still yields a valid schedule.
    RcpScheduler::Weights weights;
    weights.op = 0.0;
    weights.dist = 5.0;
    RcpScheduler sched(weights);
    Module mod = fig4Module();
    MultiSimdArch arch(2);
    LeafSchedule out = sched.schedule(mod, arch);
    validateLeafSchedule(out, arch);
    EXPECT_EQ(out.scheduledOps(), mod.numOps());
}

// --- Validator negative tests ---

/** Hand-build a one-step schedule: (region, kind, ops) triples. */
LeafSchedule
oneStep(const Module &mod, unsigned k,
        std::vector<std::tuple<unsigned, GateKind,
                               std::vector<uint32_t>>> slots)
{
    ScheduleBuilder builder(mod, k);
    builder.beginStep();
    for (auto &[r, kind, ops] : slots) {
        builder.slot(r).kind = kind;
        builder.slot(r).ops = std::move(ops);
    }
    builder.endStep();
    return builder.finish();
}

TEST(Validator, CatchesUnscheduledOp)
{
    Module mod = parallelH(2);
    // op 1 missing
    LeafSchedule sched = oneStep(mod, 1, {{0, GateKind::H, {0}}});
    EXPECT_THROW(validateLeafSchedule(sched, MultiSimdArch(1)),
                 PanicError);
}

TEST(Validator, CatchesMixedTypes)
{
    Module mod("m");
    auto reg = mod.addRegister("q", 2);
    mod.addGate(GateKind::H, {reg[0]});
    mod.addGate(GateKind::T, {reg[1]});
    LeafSchedule sched = oneStep(mod, 1, {{0, GateKind::H, {0, 1}}});
    EXPECT_THROW(validateLeafSchedule(sched, MultiSimdArch(1)),
                 PanicError);
}

TEST(Validator, CatchesDependenceViolation)
{
    Module mod("m");
    QubitId q = mod.addLocal("q");
    mod.addGate(GateKind::H, {q});
    mod.addGate(GateKind::T, {q});
    // op 1 in the same step as its predecessor
    LeafSchedule sched = oneStep(mod, 2, {{0, GateKind::H, {0}},
                                          {1, GateKind::T, {1}}});
    EXPECT_THROW(validateLeafSchedule(sched, MultiSimdArch(2)),
                 PanicError);
}

TEST(Validator, CatchesDoubleSchedule)
{
    Module mod = parallelH(1);
    LeafSchedule sched = oneStep(mod, 2, {{0, GateKind::H, {0}},
                                          {1, GateKind::H, {0}}});
    EXPECT_THROW(validateLeafSchedule(sched, MultiSimdArch(2)),
                 PanicError);
}

TEST(Validator, CatchesDBudgetViolation)
{
    Module mod = parallelH(3);
    MultiSimdArch arch(1, 2);
    // 3 qubits > d=2
    LeafSchedule sched = oneStep(mod, 1, {{0, GateKind::H, {0, 1, 2}}});
    EXPECT_THROW(validateLeafSchedule(sched, arch), PanicError);
}

TEST(Validator, CatchesBadMoveSource)
{
    Module mod = parallelH(1);
    LeafSchedule sched = oneStep(mod, 1, {{0, GateKind::H, {0}}});
    // Claims the qubit comes from region 0, but it starts in memory.
    sched.appendMove(
        0, {0, Location::inRegion(0), Location::inRegion(0), true});
    EXPECT_THROW(validateLeafSchedule(sched, MultiSimdArch(1), true),
                 PanicError);
}

TEST(Validator, CatchesOperandNotResident)
{
    Module mod = parallelH(1);
    LeafSchedule sched = oneStep(mod, 1, {{0, GateKind::H, {0}}});
    // No fetch move: operand still in global memory.
    EXPECT_THROW(validateLeafSchedule(sched, MultiSimdArch(1), true),
                 PanicError);
}

// Invariant 4 must reject a qubit touched twice in one timestep even
// when the two touching ops sit in *different* SIMD regions, not just
// within one region slot.
TEST(Validator, CatchesQubitTouchedTwiceAcrossRegions)
{
    Module mod("m");
    auto reg = mod.addRegister("q", 3);
    mod.addGate(GateKind::H, {reg[0]});
    mod.addGate(GateKind::CNOT, {reg[1], reg[2]});
    mod.addGate(GateKind::CNOT, {reg[0], reg[1]}); // shares q0 with op 0
    ScheduleBuilder builder(mod, 2);
    builder.beginStep();
    builder.slot(0).kind = GateKind::H;
    builder.slot(0).ops = {0};
    builder.slot(1).kind = GateKind::CNOT;
    builder.slot(1).ops = {2}; // q0 again, in the other region
    builder.endStep();
    builder.beginStep();
    builder.slot(0).kind = GateKind::CNOT;
    builder.slot(0).ops = {1};
    builder.endStep();
    LeafSchedule sched = builder.finish();

    EXPECT_THROW(validateLeafSchedule(sched, MultiSimdArch(2)),
                 PanicError);

    DiagnosticEngine diags;
    EXPECT_FALSE(validateLeafSchedule(sched, MultiSimdArch(2), false,
                                      &diags));
    EXPECT_TRUE(diags.has(DiagCode::SchedQubitConflict));
}

// The collect mode reports *every* violation of a doubly-broken
// schedule with distinct codes; the default mode still fails fast.
TEST(Validator, CollectModeReportsAllViolations)
{
    Module mod("m");
    auto reg = mod.addRegister("q", 3);
    mod.addGate(GateKind::H, {reg[0]});
    mod.addGate(GateKind::T, {reg[1]});
    mod.addGate(GateKind::H, {reg[2]});

    // breakage 1: T in an H slot; breakage 2: op 2 never scheduled.
    LeafSchedule sched = oneStep(mod, 2, {{0, GateKind::H, {0, 1}}});

    DiagnosticEngine diags;
    EXPECT_FALSE(validateLeafSchedule(sched, MultiSimdArch(2), false,
                                      &diags));
    EXPECT_EQ(diags.numErrors(), 2u);
    EXPECT_TRUE(diags.has(DiagCode::SchedMixedKinds));
    EXPECT_TRUE(diags.has(DiagCode::SchedOpMissing));

    // Existing callers (no engine) still fail fast on the first one.
    EXPECT_THROW(validateLeafSchedule(sched, MultiSimdArch(2)),
                 PanicError);
}

TEST(Validator, CollectModeAcceptsValidSchedule)
{
    Module mod = parallelH(4);
    LpfsScheduler lpfs;
    MultiSimdArch arch(2);
    LeafSchedule out = lpfs.schedule(mod, arch);
    DiagnosticEngine diags;
    EXPECT_TRUE(validateLeafSchedule(out, arch, false, &diags));
    EXPECT_EQ(diags.numErrors(), 0u);
}

} // namespace
