/**
 * @file
 * Golden schedule-dump equivalence suite: the committed fixtures under
 * tests/golden/ were captured from the nested-vector schedule
 * representation the paper describes literally (one Timestep struct per
 * step owning k RegionSlot vectors). Any change to the schedule data
 * model — such as the compact structure-of-arrays ScheduleBuffer — must
 * reproduce these dumps byte-for-byte: the representation may change,
 * the schedule semantics may not.
 *
 * Regenerating fixtures (only when schedule *semantics* change on
 * purpose): MSQ_UPDATE_GOLDEN=1 ./tests/test_golden_dumps
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "core/toolflow.hh"
#include "passes/decompose_toffoli.hh"
#include "passes/flatten.hh"
#include "passes/pass_manager.hh"
#include "passes/rotation_decomposer.hh"
#include "sched/comm.hh"
#include "sched/leaf_scheduler.hh"
#include "sched/lpfs.hh"
#include "sched/rcp.hh"
#include "sched/schedule_printer.hh"
#include "workloads/workloads.hh"

namespace {

using namespace msq;

/** Leaves dumped per workload; keeps the fixtures reviewable. */
constexpr size_t maxLeaves = 6;

/** Timesteps dumped per schedule (the printer's truncation marker
 * still encodes the full step count, so length changes are caught). */
constexpr uint64_t maxSteps = 48;

std::string
goldenPath(const std::string &name)
{
    return std::string(MSQ_SOURCE_DIR) + "/tests/golden/" + name + ".txt";
}

Program
prepare(const std::string &short_name)
{
    auto spec =
        workloads::findWorkload(workloads::scaledParams(), short_name);
    Program prog = spec.build();
    PassManager passes;
    passes.add(std::make_unique<DecomposeToffoliPass>());
    passes.add(std::make_unique<RotationDecomposerPass>(
        Toolflow::rotationPresetFor(short_name)));
    passes.add(std::make_unique<FlattenPass>(30'000));
    passes.run(prog);
    return prog;
}

/**
 * Dump the first ::maxLeaves scheduled leaves of @p prog under
 * @p scheduler: timelines with movement annotation plus the aggregate
 * counters that summarize the parts the truncated timeline omits.
 */
std::string
dumpWorkload(const Program &prog, const LeafScheduler &scheduler,
             const MultiSimdArch &arch, CommMode mode)
{
    std::ostringstream os;
    os << "# scheduler=" << scheduler.name() << " arch="
       << arch.describe() << " mode=" << commModeName(mode) << "\n";
    CommunicationAnalyzer analyzer(arch, mode);
    size_t dumped = 0;
    for (ModuleId id : prog.reachableModules()) {
        const Module &mod = prog.module(id);
        if (!mod.isLeaf() || mod.numOps() == 0)
            continue;
        if (dumped++ == maxLeaves)
            break;
        LeafSchedule sched = scheduler.schedule(mod, arch);
        CommStats stats = analyzer.annotate(sched);
        os << "== " << mod.name() << " ops=" << mod.numOps()
           << " qubits=" << mod.numQubits()
           << " steps=" << sched.computeTimesteps()
           << " width=" << sched.width()
           << " cycles=" << stats.totalCycles
           << " teleports=" << stats.teleportMoves
           << " blocking=" << stats.blockingTeleports
           << " local=" << stats.localMoves
           << " peak=" << stats.peakBlockingMovesPerStep;
        if (arch.topology.multiCore())
            os << " intercore=" << stats.interCoreTeleports;
        os << "\n";
        TimelinePrintOptions options;
        options.maxSteps = maxSteps;
        options.showMoves = true;
        printTimeline(os, sched, options);
    }
    return os.str();
}

void
checkGolden(const std::string &name, const std::string &actual)
{
    const std::string path = goldenPath(name);
    const char *update = std::getenv("MSQ_UPDATE_GOLDEN");
    if (update && *update && std::string(update) != "0") {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden fixture " << path
        << " (regenerate with MSQ_UPDATE_GOLDEN=1)";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string expected = buffer.str();
    // Byte-for-byte: report the first diverging line for diagnosis.
    if (actual != expected) {
        std::istringstream a(actual), e(expected);
        std::string la, le;
        size_t line = 0;
        while (true) {
            ++line;
            bool more_a = static_cast<bool>(std::getline(a, la));
            bool more_e = static_cast<bool>(std::getline(e, le));
            if (!more_a && !more_e)
                break;
            ASSERT_EQ(le, la) << name << ": first divergence at line "
                              << line;
        }
        FAIL() << name << ": dumps differ in length only";
    }
}

class GoldenDumps : public ::testing::TestWithParam<const char *>
{};

TEST_P(GoldenDumps, RcpGlobal)
{
    Program prog = prepare(GetParam());
    RcpScheduler rcp;
    checkGolden(std::string(GetParam()) + "_rcp_k4",
                dumpWorkload(prog, rcp, MultiSimdArch(4),
                             CommMode::Global));
}

TEST_P(GoldenDumps, LpfsGlobal)
{
    Program prog = prepare(GetParam());
    LpfsScheduler lpfs;
    checkGolden(std::string(GetParam()) + "_lpfs_k4",
                dumpWorkload(prog, lpfs, MultiSimdArch(4),
                             CommMode::Global));
}

TEST_P(GoldenDumps, SequentialGlobal)
{
    // The speedup baseline ("over sequential execution"): one op per
    // step. Locks down the denominator of every reported speedup.
    Program prog = prepare(GetParam());
    SequentialScheduler sequential;
    checkGolden(std::string(GetParam()) + "_sequential_k4",
                dumpWorkload(prog, sequential, MultiSimdArch(4),
                             CommMode::Global));
}

TEST_P(GoldenDumps, LpfsLocalMem)
{
    // Exercises the scratchpad moves (ballistic, r<n>.local) too.
    Program prog = prepare(GetParam());
    LpfsScheduler lpfs;
    checkGolden(std::string(GetParam()) + "_lpfs_k4_local",
                dumpWorkload(prog, lpfs, MultiSimdArch(4, unbounded, 2),
                             CommMode::GlobalWithLocalMem));
}

/**
 * Multi-core equivalence fixtures (DESIGN.md §16): one workload dumped
 * on a ring, a mesh and an all-to-all 4-core machine. These lock down
 * the qubit mapping, the link routing and the inter-core teleport
 * accounting the same way the flat fixtures lock down the schedule
 * semantics.
 */
TEST(GoldenDumpsMultiCore, ShapesLockMappingAndRouting)
{
    struct Fixture
    {
        const char *name;
        const char *spec;
    };
    const Fixture fixtures[] = {
        {"grovers_lpfs_ring4",
         "cores=4,k=1,shape=ring,link-bw=1,link-lat=3"},
        {"grovers_lpfs_mesh4",
         "cores=4,k=1,shape=mesh,link-bw=1,link-lat=3"},
        {"grovers_lpfs_all4",
         "cores=4,k=1,shape=all-to-all,link-bw=1,link-lat=3"},
    };
    Program prog = prepare("grovers");
    LpfsScheduler lpfs;
    for (const Fixture &fixture : fixtures) {
        MultiSimdArch arch;
        std::string error;
        ASSERT_TRUE(parseTopologySpec(fixture.spec, arch, error))
            << error;
        checkGolden(fixture.name,
                    dumpWorkload(prog, lpfs, arch, CommMode::Global));
    }
}

/**
 * The degenerate one-core topology must reproduce the flat machine's
 * dump byte-for-byte — the core refactor invariant, checked against the
 * same fixture the flat run uses.
 */
TEST(GoldenDumpsMultiCore, OneCoreTopologyMatchesFlatFixture)
{
    Program prog = prepare("grovers");
    LpfsScheduler lpfs;
    MultiSimdArch arch;
    std::string error;
    ASSERT_TRUE(parseTopologySpec("cores=1,k=4", arch, error)) << error;
    checkGolden("grovers_lpfs_k4",
                dumpWorkload(prog, lpfs, arch, CommMode::Global));
}

INSTANTIATE_TEST_SUITE_P(Workloads, GoldenDumps,
                         ::testing::Values("grovers", "tfp", "gse"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

} // namespace
