/**
 * @file
 * Determinism suite for the parallel scheduling pipeline (DESIGN.md §9):
 * ProgramSchedule metrics and per-module timestep streams must be
 * bit-identical for every thread count and for memoization on vs off,
 * across RCP and LPFS, on several workloads. This is the contract that
 * makes ToolflowConfig::numThreads safe to default to the hardware
 * concurrency.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "core/toolflow.hh"
#include "passes/decompose_toffoli.hh"
#include "passes/pass_manager.hh"
#include "sched/leaf_cache.hh"
#include "sched/schedule_printer.hh"
#include "support/telemetry.hh"
#include "support/thread_pool.hh"
#include "workloads/workloads.hh"

namespace {

using namespace msq;

const char *const kWorkloads[] = {"grovers", "tfp", "gse"};

/** Full structural equality of two program schedules. */
void
expectSameSchedule(const ProgramSchedule &a, const ProgramSchedule &b,
                   const std::string &context)
{
    ASSERT_EQ(a.modules.size(), b.modules.size()) << context;
    EXPECT_EQ(a.totalCycles, b.totalCycles) << context;
    for (size_t i = 0; i < a.modules.size(); ++i) {
        const ModuleScheduleInfo &ma = a.modules[i];
        const ModuleScheduleInfo &mb = b.modules[i];
        SCOPED_TRACE(context + ", module " + std::to_string(i));
        ASSERT_EQ(ma.analyzed, mb.analyzed);
        if (!ma.analyzed)
            continue;
        EXPECT_EQ(ma.leaf, mb.leaf);
        ASSERT_EQ(ma.dims.size(), mb.dims.size());
        for (size_t d = 0; d < ma.dims.size(); ++d) {
            EXPECT_EQ(ma.dims[d].width, mb.dims[d].width);
            EXPECT_EQ(ma.dims[d].length, mb.dims[d].length);
        }
        EXPECT_EQ(ma.comm.teleportMoves, mb.comm.teleportMoves);
        EXPECT_EQ(ma.comm.blockingTeleports, mb.comm.blockingTeleports);
        EXPECT_EQ(ma.comm.localMoves, mb.comm.localMoves);
        EXPECT_EQ(ma.comm.stepsWithBlockingMove,
                  mb.comm.stepsWithBlockingMove);
        EXPECT_EQ(ma.comm.stepsWithOnlyLocalMoves,
                  mb.comm.stepsWithOnlyLocalMoves);
        EXPECT_EQ(ma.comm.peakBlockingMovesPerStep,
                  mb.comm.peakBlockingMovesPerStep);
        EXPECT_EQ(ma.comm.activeRegionSteps, mb.comm.activeRegionSteps);
        EXPECT_EQ(ma.comm.operandSlots, mb.comm.operandSlots);
        EXPECT_EQ(ma.comm.peakRegionOccupancy,
                  mb.comm.peakRegionOccupancy);
        EXPECT_EQ(ma.comm.interCoreTeleports, mb.comm.interCoreTeleports);
        EXPECT_EQ(ma.comm.totalCycles, mb.comm.totalCycles);
    }
}

ToolflowResult
runWith(const std::string &short_name, SchedulerKind kind,
        unsigned num_threads, bool cache)
{
    auto spec =
        workloads::findWorkload(workloads::scaledParams(), short_name);
    Program prog = spec.build();
    ToolflowConfig config;
    config.scheduler = kind;
    config.arch = MultiSimdArch(4);
    config.commMode = CommMode::Global;
    config.rotations = Toolflow::rotationPresetFor(short_name);
    config.numThreads = num_threads;
    config.leafCache = cache;
    return Toolflow(config).run(prog);
}

TEST(Determinism, ThreadCountAndCacheInvariance)
{
    for (const char *workload : kWorkloads) {
        for (SchedulerKind kind :
             {SchedulerKind::Rcp, SchedulerKind::Lpfs}) {
            ToolflowResult baseline = runWith(workload, kind, 1, false);
            EXPECT_EQ(baseline.leafCacheHits, 0u);
            EXPECT_EQ(baseline.leafCacheMisses, 0u);
            struct Config
            {
                unsigned threads;
                bool cache;
            };
            for (Config config : {Config{2, false}, Config{8, false},
                                  Config{1, true}, Config{8, true}}) {
                ToolflowResult other = runWith(
                    workload, kind, config.threads, config.cache);
                std::string context =
                    std::string(workload) + "/" +
                    schedulerKindName(kind) + " threads=" +
                    std::to_string(config.threads) +
                    (config.cache ? " cache" : "");
                EXPECT_EQ(baseline.scheduledCycles,
                          other.scheduledCycles)
                    << context;
                EXPECT_EQ(baseline.totalGates, other.totalGates)
                    << context;
                EXPECT_EQ(baseline.qubits, other.qubits) << context;
                expectSameSchedule(baseline.schedule, other.schedule,
                                   context);
                if (config.cache) {
                    EXPECT_GT(other.leafCacheMisses, 0u) << context;
                } else {
                    EXPECT_EQ(other.leafCacheMisses, 0u) << context;
                }
            }
        }
    }
}

/**
 * The §9 contract holds unchanged on a multi-core topology: qubit
 * mapping, link routing and inter-core teleport accounting are pure
 * deterministic functions, so a 4-core machine schedules bit-identically
 * for every thread count and for memoization on vs off.
 */
TEST(Determinism, MultiCoreTopologyInvariance)
{
    auto run = [](const char *workload, SchedulerKind kind,
                  unsigned threads, bool cache) {
        auto spec = workloads::findWorkload(workloads::scaledParams(),
                                            workload);
        Program prog = spec.build();
        ToolflowConfig config;
        config.scheduler = kind;
        std::string error;
        EXPECT_TRUE(parseTopologySpec(
            "cores=4,k=1,shape=ring,link-bw=2,link-lat=3", config.arch,
            error))
            << error;
        config.commMode = CommMode::Global;
        config.rotations = Toolflow::rotationPresetFor(workload);
        config.numThreads = threads;
        config.leafCache = cache;
        return Toolflow(config).run(prog);
    };
    for (const char *workload : {"grovers", "tfp"}) {
        for (SchedulerKind kind :
             {SchedulerKind::Rcp, SchedulerKind::Lpfs}) {
            ToolflowResult baseline = run(workload, kind, 1, false);
            struct Config
            {
                unsigned threads;
                bool cache;
            };
            for (Config config : {Config{2, false}, Config{8, false},
                                  Config{1, true}, Config{2, true},
                                  Config{8, true}}) {
                ToolflowResult other = run(workload, kind,
                                           config.threads, config.cache);
                std::string context =
                    std::string("4-core ") + workload + "/" +
                    schedulerKindName(kind) + " threads=" +
                    std::to_string(config.threads) +
                    (config.cache ? " cache" : "");
                EXPECT_EQ(baseline.scheduledCycles,
                          other.scheduledCycles)
                    << context;
                expectSameSchedule(baseline.schedule, other.schedule,
                                   context);
            }
        }
    }
}

/**
 * The per-module timestep streams, not just the summary metrics: leaf
 * schedules computed under concurrent fan-out (one shared const
 * scheduler, many threads) must print identically to sequentially
 * computed ones, width by width.
 */
TEST(Determinism, LeafTimestepStreamsMatchUnderFanOut)
{
    auto spec =
        workloads::findWorkload(workloads::scaledParams(), "grovers");
    Program prog = spec.build();
    PassManager passes;
    passes.add(std::make_unique<DecomposeToffoliPass>());
    passes.add(std::make_unique<RotationDecomposerPass>(
        Toolflow::rotationPresetFor("grovers")));
    passes.add(std::make_unique<FlattenPass>(30'000));
    passes.run(prog);

    std::vector<ModuleId> leaves;
    for (ModuleId id : prog.reachableModules())
        if (prog.module(id).isLeaf() && prog.module(id).numOps() > 0)
            leaves.push_back(id);
    ASSERT_FALSE(leaves.empty());

    const std::vector<unsigned> widths{1, 2, 4};
    LpfsScheduler scheduler;

    auto stream = [&](ModuleId id, unsigned w) {
        LeafSchedule sched =
            scheduler.schedule(prog.module(id), MultiSimdArch(w));
        std::ostringstream os;
        printTimeline(os, sched);
        return os.str();
    };

    std::vector<std::string> sequential(leaves.size() * widths.size());
    for (size_t i = 0; i < sequential.size(); ++i)
        sequential[i] = stream(leaves[i / widths.size()],
                               widths[i % widths.size()]);

    std::vector<std::string> parallel(sequential.size());
    ThreadPool pool(4);
    pool.parallelFor(parallel.size(), [&](uint64_t i) {
        parallel[i] = stream(leaves[i / widths.size()],
                             widths[i % widths.size()]);
    });

    for (size_t i = 0; i < sequential.size(); ++i) {
        EXPECT_EQ(sequential[i], parallel[i])
            << "leaf " << leaves[i / widths.size()] << " width "
            << widths[i % widths.size()];
    }
}

/** True for wall-clock distributions, which legitimately vary. */
bool
isTimingMetric(const std::string &name)
{
    return name.size() >= 3 &&
           name.compare(name.size() - 3, 3, "_ms") == 0;
}

/**
 * Two telemetry snapshots must carry the same metric set, and every
 * non-wall-clock value must match exactly.
 */
void
expectSameTelemetry(const MetricsSnapshot &a, const MetricsSnapshot &b,
                    const std::string &context)
{
    ASSERT_EQ(a.entries.size(), b.entries.size()) << context;
    for (size_t i = 0; i < a.entries.size(); ++i) {
        const MetricEntry &ea = a.entries[i];
        const MetricEntry &eb = b.entries[i];
        SCOPED_TRACE(context + ", metric " + ea.name);
        ASSERT_EQ(ea.name, eb.name);
        ASSERT_EQ(ea.kind, eb.kind);
        if (isTimingMetric(ea.name))
            continue;
        switch (ea.kind) {
          case MetricEntry::Kind::Counter:
            EXPECT_EQ(ea.counterValue, eb.counterValue);
            break;
          case MetricEntry::Kind::Gauge:
            EXPECT_EQ(ea.gaugeValue, eb.gaugeValue);
            break;
          case MetricEntry::Kind::Distribution:
            EXPECT_EQ(ea.dist.count, eb.dist.count);
            EXPECT_EQ(ea.dist.sum, eb.dist.sum);
            EXPECT_EQ(ea.dist.min, eb.dist.min);
            EXPECT_EQ(ea.dist.max, eb.dist.max);
            EXPECT_EQ(ea.dist.p50, eb.dist.p50);
            EXPECT_EQ(ea.dist.p99, eb.dist.p99);
            break;
        }
    }
}

/**
 * The DESIGN.md §9 contract extends to telemetry (§10): with tracing on
 * and metrics recording, every counter, gauge and non-"_ms"
 * distribution — gate counts, cache traffic, teleport totals — is
 * bit-identical across thread counts; only wall-clock fields differ.
 */
TEST(Determinism, TelemetryThreadCountInvariance)
{
    Telemetry::trace().setEnabled(true);
    for (const char *workload : kWorkloads) {
        ToolflowResult baseline =
            runWith(workload, SchedulerKind::Lpfs, 1, true);
        EXPECT_GT(baseline.telemetry.counter("sched.leaf.instances"), 0u)
            << workload;
        EXPECT_EQ(baseline.telemetry.counter("sched.leaf_cache.misses"),
                  baseline.leafCacheMisses)
            << workload;
        EXPECT_EQ(baseline.telemetry.counter("sched.leaf_cache.hits"),
                  baseline.leafCacheHits)
            << workload;
        for (unsigned threads : {2u, 8u}) {
            ToolflowResult other =
                runWith(workload, SchedulerKind::Lpfs, threads, true);
            std::string context = std::string(workload) + " threads=" +
                                  std::to_string(threads);
            expectSameSchedule(baseline.schedule, other.schedule,
                               context);
            expectSameTelemetry(baseline.telemetry, other.telemetry,
                                context);
        }
    }
    Telemetry::trace().setEnabled(false);
    Telemetry::trace().flush();
}

/**
 * A shared cache reused across runs must keep returning the first
 * run's results (and actually hit).
 */
TEST(Determinism, SharedCacheAcrossRuns)
{
    auto cache = std::make_shared<LeafScheduleCache>();
    auto run = [&](unsigned threads) {
        auto spec =
            workloads::findWorkload(workloads::scaledParams(), "tfp");
        Program prog = spec.build();
        ToolflowConfig config;
        config.scheduler = SchedulerKind::Lpfs;
        config.arch = MultiSimdArch(4);
        config.commMode = CommMode::Global;
        config.numThreads = threads;
        config.sharedLeafCache = cache;
        return Toolflow(config).run(prog);
    };
    ToolflowResult first = run(1);
    ToolflowResult second = run(8);
    EXPECT_EQ(first.scheduledCycles, second.scheduledCycles);
    expectSameSchedule(first.schedule, second.schedule, "shared cache");
    // The second run re-schedules an identical program: every leaf
    // lookup must hit.
    EXPECT_GT(second.leafCacheHits, 0u);
    EXPECT_EQ(second.leafCacheMisses, 0u);
}

} // anonymous namespace
