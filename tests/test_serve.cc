/**
 * @file
 * Tests for the serving layer (core/serve.hh) and its JSON substrate
 * (support/json.hh): request parsing and error responses, schedule
 * hashing, replay determinism, batch-vs-sequential equivalence, and the
 * warm-start contract — a daemon restarted onto a persisted cache
 * answers bit-identically to the cold process that wrote it, at leaf
 * hit rate 1.0.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/serve.hh"
#include "support/json.hh"
#include "support/strings.hh"

namespace {

using namespace msq;

// ---------------------------------------------------------------------
// support/json.hh
// ---------------------------------------------------------------------

std::unique_ptr<JsonValue>
parseOk(const std::string &text)
{
    std::string error;
    auto value = parseJson(text, error);
    EXPECT_NE(value, nullptr) << text << ": " << error;
    return value;
}

TEST(JsonParser, Scalars)
{
    EXPECT_TRUE(parseOk("null")->isNull());
    EXPECT_EQ(parseOk("true")->asBool(), true);
    EXPECT_EQ(parseOk("false")->asBool(), false);
    EXPECT_EQ(parseOk("42")->asUnsigned(), 42u);
    EXPECT_EQ(parseOk("-3")->asNumber(), -3.0);
    EXPECT_EQ(parseOk("2.5e2")->asNumber(), 250.0);
    EXPECT_EQ(parseOk("\"hi\"")->asString(), "hi");
}

TEST(JsonParser, StringEscapes)
{
    EXPECT_EQ(parseOk("\"a\\n\\t\\\"b\\\\\"")->asString(),
              "a\n\t\"b\\");
    EXPECT_EQ(parseOk("\"\\u0041\\u00e9\"")->asString(), "A\xc3\xa9");
}

TEST(JsonParser, Containers)
{
    auto doc = parseOk(R"({"a": [1, 2, 3], "b": {"c": "d"}, "e": null})");
    ASSERT_TRUE(doc->isObject());
    EXPECT_TRUE(doc->has("a"));
    EXPECT_FALSE(doc->has("missing"));
    EXPECT_TRUE(doc->get("missing").isNull());
    ASSERT_TRUE(doc->get("a").isArray());
    EXPECT_EQ(doc->get("a").elements().size(), 3u);
    EXPECT_EQ(doc->get("a").elements()[2].asUnsigned(), 3u);
    EXPECT_EQ(doc->get("b").get("c").asString(), "d");
    EXPECT_TRUE(doc->get("e").isNull());
}

TEST(JsonParser, AsUnsignedFallback)
{
    EXPECT_EQ(parseOk("\"nan\"")->asUnsigned(7), 7u);
    EXPECT_EQ(parseOk("{}")->get("missing").asUnsigned(9), 9u);
}

TEST(JsonParser, Rejections)
{
    std::string error;
    EXPECT_EQ(parseJson("", error), nullptr);
    EXPECT_EQ(parseJson("{", error), nullptr);
    EXPECT_EQ(parseJson("{\"a\": }", error), nullptr);
    EXPECT_EQ(parseJson("\"unterminated", error), nullptr);
    EXPECT_EQ(parseJson("[1, 2,]", error), nullptr);
    EXPECT_EQ(parseJson("true false", error), nullptr); // trailing junk
    EXPECT_EQ(parseJson("tru", error), nullptr);
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------
// ServeEngine
// ---------------------------------------------------------------------

std::unique_ptr<JsonValue>
serveOne(ServeEngine &engine, const std::string &line)
{
    std::string error;
    auto response = parseJson(engine.handleLine(line), error);
    EXPECT_NE(response, nullptr) << error;
    return response;
}

TEST(Serve, ErrorResponses)
{
    ServeEngine engine(ServeOptions{});
    struct Case
    {
        const char *line;
        const char *needle; ///< must appear in the error message
    };
    const Case cases[] = {
        {"not json at all", "expected"},
        {"[1, 2]", "object"},
        {"{}", "workload"},
        {R"({"workload": "grovers", "source": "module main() {}"})",
         "exactly one"},
        {R"({"workload": "nope"})", "unknown workload"},
        {R"({"workload": "grovers", "params": "huge"})",
         "unknown params"},
        {R"({"workload": "grovers", "scheduler": "magic"})",
         "unknown scheduler"},
        {R"({"workload": "grovers", "comm_mode": "warp"})",
         "unknown comm_mode"},
        {R"({"workload": "grovers", "k": 0})", "k must be"},
    };
    for (const Case &c : cases) {
        auto response = serveOne(engine, c.line);
        EXPECT_FALSE(response->get("ok").asBool()) << c.line;
        EXPECT_NE(response->get("error").asString().find(c.needle),
                  std::string::npos)
            << c.line << " -> " << response->get("error").asString();
    }
}

TEST(Serve, IdEchoedVerbatim)
{
    ServeEngine engine(ServeOptions{});
    auto str = serveOne(engine, R"({"id": "req-7", "bad": true})");
    EXPECT_EQ(str->get("id").asString(), "req-7");
    auto num = serveOne(engine, R"({"id": 31337})");
    EXPECT_EQ(num->get("id").asUnsigned(), 31337u);
    auto none = serveOne(engine, R"({"bad": true})");
    EXPECT_TRUE(none->get("id").isNull());
}

TEST(Serve, WorkloadRequest)
{
    ServeEngine engine(ServeOptions{});
    auto response = serveOne(
        engine,
        R"({"id": 1, "workload": "grovers", "params": "tiny", "k": 4})");
    ASSERT_TRUE(response->get("ok").asBool())
        << response->get("error").asString();
    EXPECT_EQ(response->get("workload").asString(), "grovers");
    EXPECT_GT(response->get("makespan").asUnsigned(), 0u);
    EXPECT_GT(response->get("total_gates").asUnsigned(), 0u);
    EXPECT_GT(response->get("qubits").asUnsigned(), 0u);
    EXPECT_EQ(response->get("schedule_hash").asString().size(), 16u);
    EXPECT_GE(response->get("gap").asNumber(), 1.0);
    EXPECT_GT(response->get("cache").get("misses").asUnsigned(), 0u);
    EXPECT_EQ(response->get("cache").get("loads").asUnsigned(), 0u);
}

TEST(Serve, ScaffoldSourceRequest)
{
    ServeEngine engine(ServeOptions{});
    auto response = serveOne(
        engine,
        R"({"source": "module main() { qbit q[2]; H(q[0]); CNOT(q[0], q[1]); }", "k": 2})");
    ASSERT_TRUE(response->get("ok").asBool())
        << response->get("error").asString();
    EXPECT_EQ(response->get("workload").asString(), "source");
    EXPECT_EQ(response->get("qubits").asUnsigned(), 2u);
    EXPECT_EQ(response->get("total_gates").asUnsigned(), 2u);
    EXPECT_GT(response->get("makespan").asUnsigned(), 0u);
}

TEST(Serve, ReplayHitsCacheAndIsDeterministic)
{
    ServeEngine engine(ServeOptions{});
    const std::string line =
        R"({"workload": "bwt", "params": "tiny", "k": 4})";
    auto first = serveOne(engine, line);
    auto second = serveOne(engine, line);
    ASSERT_TRUE(first->get("ok").asBool());
    ASSERT_TRUE(second->get("ok").asBool());
    EXPECT_EQ(first->get("schedule_hash").asString(),
              second->get("schedule_hash").asString());
    EXPECT_EQ(first->get("makespan").asUnsigned(),
              second->get("makespan").asUnsigned());
    EXPECT_GT(second->get("cache").get("hits").asUnsigned(), 0u);
    EXPECT_EQ(second->get("telemetry").get("leaf_cache_misses")
                  .asUnsigned(),
              0u);
    EXPECT_EQ(engine.requestsServed(), 2u);
}

TEST(Serve, BatchMatchesSequential)
{
    const char *workloads[] = {"grovers", "bwt", "cn"};
    std::vector<std::string> lines;
    for (int rep = 0; rep < 2; ++rep)
        for (const char *name : workloads)
            lines.push_back(csprintf(
                "{\"id\": \"%s-%d\", \"workload\": \"%s\", "
                "\"params\": \"tiny\", \"k\": 4}",
                name, rep, name));

    ServeOptions batchOptions;
    batchOptions.numThreads = 4;
    ServeEngine batchEngine(batchOptions);
    std::vector<std::string> batched = batchEngine.handleBatch(lines);
    ASSERT_EQ(batched.size(), lines.size());

    ServeEngine seqEngine(ServeOptions{});
    for (size_t i = 0; i < lines.size(); ++i) {
        auto parallel = parseOk(batched[i]);
        auto sequential = serveOne(seqEngine, lines[i]);
        ASSERT_TRUE(parallel->get("ok").asBool()) << batched[i];
        EXPECT_EQ(parallel->get("id").asString(),
                  sequential->get("id").asString());
        EXPECT_EQ(parallel->get("schedule_hash").asString(),
                  sequential->get("schedule_hash").asString())
            << lines[i];
        EXPECT_EQ(parallel->get("makespan").asUnsigned(),
                  sequential->get("makespan").asUnsigned());
    }
    // Same distinct leaves -> same hit/miss totals, any thread count.
    EXPECT_EQ(batchEngine.cache().hits(), seqEngine.cache().hits());
    EXPECT_EQ(batchEngine.cache().misses(),
              seqEngine.cache().misses());
}

TEST(Serve, WarmStartIsBitIdenticalAtHitRateOne)
{
    const std::string path =
        testing::TempDir() + "serve_warmstart.msqc";
    std::remove(path.c_str());
    const char *workloads[] = {"grovers", "bwt", "gse"};

    ServeOptions options;
    options.cachePath = path;
    ServeEngine cold(options);
    EXPECT_EQ(cold.loadCache(), 0u); // missing file: silent cold start
    EXPECT_EQ(cold.diags().numWarnings(), 0u);

    std::vector<std::pair<std::string, uint64_t>> coldResults;
    for (const char *name : workloads) {
        auto response = serveOne(
            cold, csprintf("{\"workload\": \"%s\", \"params\": "
                           "\"tiny\", \"k\": 4}",
                           name));
        ASSERT_TRUE(response->get("ok").asBool());
        coldResults.emplace_back(
            response->get("schedule_hash").asString(),
            response->get("makespan").asUnsigned());
    }
    ASSERT_NE(cold.saveCache(), SIZE_MAX);

    ServeEngine warm(options);
    EXPECT_EQ(warm.loadCache(), cold.cache().size());
    EXPECT_EQ(warm.diags().numWarnings(), 0u);
    for (size_t i = 0; i < std::size(workloads); ++i) {
        auto response = serveOne(
            warm, csprintf("{\"workload\": \"%s\", \"params\": "
                           "\"tiny\", \"k\": 4}",
                           workloads[i]));
        ASSERT_TRUE(response->get("ok").asBool());
        EXPECT_EQ(response->get("schedule_hash").asString(),
                  coldResults[i].first)
            << workloads[i];
        EXPECT_EQ(response->get("makespan").asUnsigned(),
                  coldResults[i].second);
    }
    // The warm-start contract: zero recomputes, every lookup a hit.
    EXPECT_EQ(warm.cache().misses(), 0u);
    EXPECT_EQ(warm.cache().hitRate(), 1.0);
    EXPECT_EQ(warm.cache().loads(), cold.cache().size());
    std::remove(path.c_str());
}

} // namespace
