/**
 * @file
 * Tests for the analysis library: hierarchical resource estimation,
 * module histograms (Fig. 5 bucketing), critical paths and minimum-qubit
 * (Table 1) estimation.
 */

#include <gtest/gtest.h>

#include "analysis/critical_path.hh"
#include "analysis/qubit_estimator.hh"
#include "analysis/resource_estimator.hh"
#include "support/saturate.hh"

namespace {

using namespace msq;

Program
hierarchy()
{
    Program prog;
    ModuleId leaf = prog.addModule("leaf"); // 4 gates
    {
        Module &mod = prog.module(leaf);
        QubitId q = mod.addParam("q");
        QubitId anc = mod.addLocal("anc");
        mod.addGate(GateKind::H, {q});
        mod.addGate(GateKind::CNOT, {q, anc});
        mod.addGate(GateKind::T, {anc});
        mod.addGate(GateKind::CNOT, {q, anc});
    }
    ModuleId mid = prog.addModule("mid"); // 2 + 5*4 = 22 gates
    {
        Module &mod = prog.module(mid);
        QubitId q = mod.addParam("q");
        QubitId r = mod.addLocal("r");
        mod.addGate(GateKind::H, {q});
        mod.addCall(leaf, {q}, 5);
        mod.addGate(GateKind::CNOT, {q, r});
    }
    ModuleId top = prog.addModule("top"); // 3 * 22 = 66 gates
    {
        Module &mod = prog.module(top);
        QubitId q = mod.addLocal("q");
        mod.addCall(mid, {q}, 3);
    }
    prog.setEntry(top);
    return prog;
}

TEST(ResourceEstimator, HierarchicalTotals)
{
    Program prog = hierarchy();
    ResourceEstimator res(prog);
    EXPECT_EQ(res.totalGates(prog.findModule("leaf")), 4u);
    EXPECT_EQ(res.totalGates(prog.findModule("mid")), 22u);
    EXPECT_EQ(res.totalGates(prog.findModule("top")), 66u);
    EXPECT_EQ(res.programGates(), 66u);
}

TEST(ResourceEstimator, SaturatesInsteadOfOverflowing)
{
    Program prog;
    ModuleId leaf = prog.addModule("leaf");
    prog.module(leaf).addParam("q");
    prog.module(leaf).addGate(GateKind::T, {0});
    ModuleId cur = leaf;
    // 2^64 < 10^20: chain enough x10^6 repeats to overflow.
    for (int level = 0; level < 5; ++level) {
        ModuleId next = prog.addModule("l" + std::to_string(level));
        prog.module(next).addParam("q");
        prog.module(next).addCall(cur, {0}, 1'000'000);
        cur = next;
    }
    prog.setEntry(cur);
    ResourceEstimator res(prog);
    EXPECT_EQ(res.programGates(), std::numeric_limits<uint64_t>::max());
}

TEST(Saturate, AddAndMul)
{
    EXPECT_EQ(satAdd(2, 3), 5u);
    EXPECT_EQ(satAdd(~uint64_t{0}, 1), ~uint64_t{0});
    EXPECT_EQ(satMul(3, 4), 12u);
    EXPECT_EQ(satMul(uint64_t{1} << 40, uint64_t{1} << 40), ~uint64_t{0});
    EXPECT_EQ(satMul(0, ~uint64_t{0}), 0u);
}

TEST(ModuleHistogram, BucketsMatchFig5Ranges)
{
    EXPECT_EQ(ModuleHistogram::bucketLabel(0), "0 - 1k");
    EXPECT_EQ(ModuleHistogram::bucketLabel(1), "1k - 5k");
    EXPECT_EQ(ModuleHistogram::bucketLabel(7), "1M - 2M");
    EXPECT_EQ(ModuleHistogram::bucketLabel(10), ">20M");
}

TEST(ModuleHistogram, CountsModules)
{
    Program prog = hierarchy();
    ResourceEstimator res(prog);
    ModuleHistogram hist(res);
    EXPECT_EQ(hist.totalModules(), 3u);
    EXPECT_EQ(hist.count(0), 3u); // all under 1k
    EXPECT_DOUBLE_EQ(hist.fraction(0), 1.0);
    EXPECT_DOUBLE_EQ(hist.fractionAtOrBelow(21), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(hist.fractionAtOrBelow(22), 2.0 / 3.0);
}

TEST(CriticalPath, SerialChain)
{
    Program prog = hierarchy();
    CriticalPathAnalysis cp(prog);
    // leaf cp: H -> CNOT -> T -> CNOT = 4 (all share qubits).
    EXPECT_EQ(cp.criticalPath(prog.findModule("leaf")), 4u);
    // mid: H -> 5*leaf -> CNOT, all serialized through q = 1+20+1.
    EXPECT_EQ(cp.criticalPath(prog.findModule("mid")), 22u);
    EXPECT_EQ(cp.programCriticalPath(), 66u);
}

TEST(CriticalPath, ParallelBranchesShorterThanTotal)
{
    Program prog;
    ModuleId id = prog.addModule("m");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 4);
    for (QubitId q : reg) {
        mod.addGate(GateKind::H, {q});
        mod.addGate(GateKind::T, {q});
    }
    prog.setEntry(id);
    CriticalPathAnalysis cp(prog);
    EXPECT_EQ(cp.programCriticalPath(), 2u); // 4 chains of length 2
    ResourceEstimator res(prog);
    EXPECT_EQ(res.programGates(), 8u);
}

TEST(QubitEstimator, CountsLocalsAndParams)
{
    Program prog = hierarchy();
    QubitEstimator est(prog);
    EXPECT_EQ(est.qubitsNeeded(prog.findModule("leaf")), 2u);
    // mid: 2 own qubits + (leaf demand 2 - 1 param) = 3.
    EXPECT_EQ(est.qubitsNeeded(prog.findModule("mid")), 3u);
    // top: 1 own + (mid 3 - 1 param) = 3.
    EXPECT_EQ(est.programQubits(), 3u);
}

TEST(QubitEstimator, SiblingCallsReuseAncilla)
{
    Program prog;
    ModuleId big = prog.addModule("big");
    {
        Module &mod = prog.module(big);
        QubitId q = mod.addParam("q");
        auto anc = mod.addRegister("anc", 10);
        mod.addGate(GateKind::CNOT, {q, anc[0]});
    }
    ModuleId top = prog.addModule("top");
    {
        Module &mod = prog.module(top);
        QubitId q = mod.addLocal("q");
        mod.addCall(big, {q});
        mod.addCall(big, {q});
        mod.addCall(big, {q});
    }
    prog.setEntry(top);
    QubitEstimator est(prog);
    // Sequential execution reuses the 10 ancilla across the 3 calls.
    EXPECT_EQ(est.programQubits(), 1u + 10u);
}

} // namespace
