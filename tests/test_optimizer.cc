/**
 * @file
 * Tests for the inverse-cancellation peephole pass and the Fig. 2
 * teleportation circuit generator.
 */

#include <gtest/gtest.h>

#include <functional>

#include "arch/multi_simd.hh"
#include "arch/teleport_circuit.hh"
#include "passes/cancel_inverses.hh"
#include "support/logging.hh"

namespace {

using namespace msq;

Program
singleModule(std::function<void(Module &)> fill)
{
    Program prog;
    ModuleId id = prog.addModule("m");
    fill(prog.module(id));
    prog.setEntry(id);
    return prog;
}

TEST(CancelInverses, SelfInversePairRemoved)
{
    Program prog = singleModule([](Module &mod) {
        auto reg = mod.addRegister("q", 2);
        mod.addGate(GateKind::H, {reg[0]});
        mod.addGate(GateKind::H, {reg[0]});
        mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
        mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
    });
    CancelInversesPass pass;
    pass.run(prog);
    EXPECT_EQ(prog.module(prog.entry()).numOps(), 0u);
    EXPECT_EQ(pass.totalRemoved(), 4u);
}

TEST(CancelInverses, DaggerPairsRemoved)
{
    Program prog = singleModule([](Module &mod) {
        QubitId q = mod.addLocal("q");
        mod.addGate(GateKind::T, {q});
        mod.addGate(GateKind::Tdag, {q});
        mod.addGate(GateKind::Sdag, {q});
        mod.addGate(GateKind::S, {q});
    });
    CancelInversesPass().run(prog);
    EXPECT_EQ(prog.module(prog.entry()).numOps(), 0u);
}

TEST(CancelInverses, OppositeRotationsCancel)
{
    Program prog = singleModule([](Module &mod) {
        QubitId q = mod.addLocal("q");
        mod.addGate(GateKind::Rz, {q}, 0.5);
        mod.addGate(GateKind::Rz, {q}, -0.5);
        mod.addGate(GateKind::Rx, {q}, 0.5);
        mod.addGate(GateKind::Rx, {q}, 0.25); // does not cancel
    });
    CancelInversesPass().run(prog);
    EXPECT_EQ(prog.module(prog.entry()).numOps(), 2u);
}

TEST(CancelInverses, InterveningUseBlocksCancellation)
{
    Program prog = singleModule([](Module &mod) {
        QubitId q = mod.addLocal("q");
        mod.addGate(GateKind::H, {q});
        mod.addGate(GateKind::T, {q}); // between the pair
        mod.addGate(GateKind::H, {q});
    });
    CancelInversesPass().run(prog);
    EXPECT_EQ(prog.module(prog.entry()).numOps(), 3u);
}

TEST(CancelInverses, UnrelatedQubitDoesNotBlock)
{
    Program prog = singleModule([](Module &mod) {
        auto reg = mod.addRegister("q", 2);
        mod.addGate(GateKind::H, {reg[0]});
        mod.addGate(GateKind::T, {reg[1]}); // other qubit
        mod.addGate(GateKind::H, {reg[0]});
    });
    CancelInversesPass().run(prog);
    EXPECT_EQ(prog.module(prog.entry()).numOps(), 1u);
}

TEST(CancelInverses, OperandOrderMatters)
{
    // CNOT(a,b) then CNOT(b,a) do not cancel.
    Program prog = singleModule([](Module &mod) {
        auto reg = mod.addRegister("q", 2);
        mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
        mod.addGate(GateKind::CNOT, {reg[1], reg[0]});
    });
    CancelInversesPass().run(prog);
    EXPECT_EQ(prog.module(prog.entry()).numOps(), 2u);
}

TEST(CancelInverses, MeasurementNeverCancels)
{
    Program prog = singleModule([](Module &mod) {
        QubitId q = mod.addLocal("q");
        mod.addGate(GateKind::MeasZ, {q});
        mod.addGate(GateKind::MeasZ, {q});
        mod.addGate(GateKind::PrepZ, {q});
        mod.addGate(GateKind::PrepZ, {q});
    });
    CancelInversesPass().run(prog);
    EXPECT_EQ(prog.module(prog.entry()).numOps(), 4u);
}

TEST(CancelInverses, NestedPairsConvergeAcrossSweeps)
{
    // H T Tdag H collapses completely, needing two sweeps.
    Program prog = singleModule([](Module &mod) {
        QubitId q = mod.addLocal("q");
        mod.addGate(GateKind::H, {q});
        mod.addGate(GateKind::T, {q});
        mod.addGate(GateKind::Tdag, {q});
        mod.addGate(GateKind::H, {q});
    });
    CancelInversesPass pass;
    pass.run(prog);
    EXPECT_EQ(prog.module(prog.entry()).numOps(), 0u);
    EXPECT_EQ(pass.totalRemoved(), 4u);
}

TEST(CancelInverses, CallsActAsBarriers)
{
    Program prog;
    ModuleId callee = prog.addModule("callee");
    prog.module(callee).addParam("q");
    prog.module(callee).addGate(GateKind::T, {0});
    ModuleId top = prog.addModule("top");
    Module &mod = prog.module(top);
    QubitId q = mod.addLocal("q");
    mod.addGate(GateKind::H, {q});
    mod.addCall(callee, {q});
    mod.addGate(GateKind::H, {q});
    prog.setEntry(top);

    CancelInversesPass().run(prog);
    EXPECT_EQ(prog.module(top).numOps(), 3u);
}

TEST(CancelInverses, CtqgComputeUncomputeShrinks)
{
    // A typical CTQG pattern: X-dress, nothing in between after
    // inlining, X-undress.
    Program prog = singleModule([](Module &mod) {
        auto reg = mod.addRegister("q", 4);
        for (QubitId q : reg)
            mod.addGate(GateKind::X, {q});
        mod.addGate(GateKind::Toffoli, {reg[0], reg[1], reg[2]});
        mod.addGate(GateKind::Toffoli, {reg[0], reg[1], reg[2]});
        for (QubitId q : reg)
            mod.addGate(GateKind::X, {q});
    });
    CancelInversesPass().run(prog);
    EXPECT_EQ(prog.module(prog.entry()).numOps(), 0u);
}

// --- Teleportation circuit (Fig. 2) ---

TEST(TeleportCircuit, StructureMatchesFig2)
{
    Module mod("qt");
    QubitId src = mod.addLocal("q1");
    QubitId epr_a = mod.addLocal("q2");
    QubitId epr_b = mod.addLocal("q3");
    appendTeleport(mod, src, epr_a, epr_b);

    ASSERT_EQ(mod.numOps(), 10u);
    // EPR preparation entangles q2/q3.
    EXPECT_EQ(mod.op(2).kind, GateKind::H);
    EXPECT_EQ(mod.op(3).kind, GateKind::CNOT);
    EXPECT_EQ(mod.op(3).operands, (std::vector<QubitId>{epr_a, epr_b}));
    // Bell measurement on the source side.
    EXPECT_EQ(mod.op(4).kind, GateKind::CNOT);
    EXPECT_EQ(mod.op(4).operands, (std::vector<QubitId>{src, epr_a}));
    EXPECT_EQ(mod.op(6).kind, GateKind::MeasZ);
    EXPECT_EQ(mod.op(7).kind, GateKind::MeasZ);
    // Corrections land on the destination.
    EXPECT_EQ(mod.op(8).operands, (std::vector<QubitId>{epr_b}));
    EXPECT_EQ(mod.op(9).operands, (std::vector<QubitId>{epr_b}));
}

TEST(TeleportCircuit, CriticalStepsMatchCostModel)
{
    EXPECT_EQ(teleportCriticalSteps(), MultiSimdArch::teleportCycles);
}

} // namespace
