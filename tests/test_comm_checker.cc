/**
 * @file
 * Tests for the communication-schedule race detector (M001-M008): every
 * code is exercised with a hand-seeded broken movement plan, and real
 * CommunicationAnalyzer outputs are confirmed to replay cleanly.
 */

#include <gtest/gtest.h>

#include <string>

#include "arch/multi_simd.hh"
#include "sched/comm.hh"
#include "sched/lpfs.hh"
#include "sched/rcp.hh"
#include "support/diagnostic.hh"
#include "verify/comm_checker.hh"

namespace {

using namespace msq;

/** Hand-build a schedule placing each (op, region, step) explicitly. */
class TestScheduleBuilder
{
  public:
    TestScheduleBuilder(const Module &mod, unsigned k)
        : mod(&mod), builder(mod, k)
    {}

    TestScheduleBuilder &
    step(std::vector<std::pair<unsigned, uint32_t>> placements)
    {
        builder.beginStep();
        for (auto [region, op] : placements) {
            auto &slot = builder.slot(region);
            slot.kind = mod->op(op).kind;
            slot.ops.push_back(op);
        }
        builder.endStep();
        return *this;
    }

    LeafSchedule take() { return builder.finish(); }

  private:
    const Module *mod;
    ScheduleBuilder builder;
};

bool
hasCode(const DiagnosticEngine &diags, DiagCode code)
{
    for (const Diagnostic &d : diags.diagnostics())
        if (d.code == code)
            return true;
    return false;
}

/** Two-op module: H(q) then T(q), both placed in region 0. */
Module
chainModule()
{
    Module mod("m");
    QubitId q = mod.addLocal("q");
    mod.addGate(GateKind::H, {q});
    mod.addGate(GateKind::T, {q});
    return mod;
}

Move
makeMove(uint32_t q, Location from, Location to, bool blocking = true)
{
    Move m;
    m.qubit = q;
    m.from = from;
    m.to = to;
    m.blocking = blocking;
    return m;
}

TEST(CommChecker, AnalyzerOutputRepaysClean)
{
    Module mod("m");
    QubitId a = mod.addLocal("a");
    QubitId b = mod.addLocal("b");
    mod.addGate(GateKind::H, {a});
    mod.addGate(GateKind::CNOT, {a, b});
    mod.addGate(GateKind::T, {b});
    LeafSchedule sched = TestScheduleBuilder(mod, 2)
                             .step({{0, 0}})
                             .step({{1, 1}})
                             .step({{1, 2}})
                             .take();
    CommunicationAnalyzer comm(MultiSimdArch(2), CommMode::Global);
    comm.annotate(sched);

    DiagnosticEngine diags;
    CommCheckStats stats;
    EXPECT_TRUE(checkCommSchedule(sched, MultiSimdArch(2), diags, &stats));
    EXPECT_EQ(diags.numErrors(), 0u);
    EXPECT_EQ(diags.numWarnings(), 0u);
    EXPECT_EQ(stats.steps, 3u);
    EXPECT_GT(stats.movesChecked, 0u);
    EXPECT_EQ(stats.movesChecked, stats.teleports + stats.localMoves);
}

TEST(CommChecker, NonBlockingDeadEvictionToGlobalIsExempt)
{
    // Parking a dead qubit back in global memory during a masked window
    // is mandatory hygiene, not waste: no M005.
    Module mod = chainModule();
    LeafSchedule sched =
        TestScheduleBuilder(mod, 2).step({{0, 0}}).step({{0, 1}}).take();
    sched.appendMove(
        0, makeMove(0, Location::global(), Location::inRegion(0), false));
    // One extra step after q's last use, evicting it masked.
    sched.appendEmptyStep();
    sched.appendMove(
        2, makeMove(0, Location::inRegion(0), Location::global(), false));

    DiagnosticEngine diags;
    CommCheckStats stats;
    EXPECT_TRUE(checkCommSchedule(sched, MultiSimdArch(2), diags, &stats));
    EXPECT_EQ(diags.numWarnings(), 0u);
    EXPECT_EQ(stats.deadMoves, 1u);
}

TEST(CommChecker, M001MoveDuringGate)
{
    // q computes in region 0 at step 1 but the move slot sends it to
    // global memory in the same timestep.
    Module mod = chainModule();
    LeafSchedule sched =
        TestScheduleBuilder(mod, 2).step({{0, 0}}).step({{0, 1}}).take();
    sched.appendMove(
        0, makeMove(0, Location::global(), Location::inRegion(0), false));
    sched.appendMove(
        1, makeMove(0, Location::inRegion(0), Location::global()));

    DiagnosticEngine diags;
    EXPECT_FALSE(checkCommSchedule(sched, MultiSimdArch(2), diags));
    EXPECT_TRUE(hasCode(diags, DiagCode::CommMoveDuringGate));
}

TEST(CommChecker, M002ConflictingMoves)
{
    Module mod = chainModule();
    LeafSchedule sched =
        TestScheduleBuilder(mod, 2).step({{0, 0}}).step({{0, 1}}).take();
    // q moved twice within step 0's movement phase.
    sched.appendMove(
        0, makeMove(0, Location::global(), Location::inRegion(1), false));
    sched.appendMove(
        0, makeMove(0, Location::inRegion(1), Location::inRegion(0), false));

    DiagnosticEngine diags;
    EXPECT_FALSE(checkCommSchedule(sched, MultiSimdArch(2), diags));
    EXPECT_TRUE(hasCode(diags, DiagCode::CommConflictingMoves));
}

TEST(CommChecker, M003RegionOversubscribed)
{
    // Three qubits fetched into region 0 under d = 2. All three compute
    // there, so the occupancy (not the gate width) trips the check.
    Module mod("m");
    auto reg = mod.addRegister("q", 3);
    for (QubitId q : reg)
        mod.addGate(GateKind::H, {q});
    LeafSchedule sched =
        TestScheduleBuilder(mod, 1).step({{0, 0}, {0, 1}, {0, 2}}).take();
    for (QubitId q : reg)
        sched.appendMove(
            0, makeMove(q, Location::global(), Location::inRegion(0), false));

    MultiSimdArch arch(1, 2);
    DiagnosticEngine diags;
    EXPECT_FALSE(checkCommSchedule(sched, arch, diags));
    EXPECT_TRUE(hasCode(diags, DiagCode::CommRegionOvercap));

    // The same schedule is fine with unbounded d.
    DiagnosticEngine clean;
    EXPECT_TRUE(checkCommSchedule(sched, MultiSimdArch(1), clean));
}

TEST(CommChecker, M004LocalMemoryOverCapacity)
{
    Module mod("m");
    QubitId a = mod.addLocal("a");
    QubitId b = mod.addLocal("b");
    mod.addGate(GateKind::H, {a});
    mod.addGate(GateKind::CNOT, {a, b});
    TestScheduleBuilder builder(mod, 1);
    builder.step({{0, 0}}).step({{0, 1}});
    LeafSchedule sched = builder.take();
    sched.appendMove(
        0, makeMove(a, Location::global(), Location::inRegion(0), false));
    sched.appendMove(
        0, makeMove(b, Location::global(), Location::inRegion(0), false));
    // Park both qubits in region 0's scratchpad; capacity is 1.
    sched.appendEmptyStep();
    sched.appendMove(
        2, makeMove(a, Location::inRegion(0), Location::inLocalMem(0), false));
    sched.appendMove(
        2, makeMove(b, Location::inRegion(0), Location::inLocalMem(0), false));

    MultiSimdArch arch(1);
    arch.localMemCapacity = 1;
    DiagnosticEngine diags;
    EXPECT_FALSE(checkCommSchedule(sched, arch, diags));
    EXPECT_TRUE(hasCode(diags, DiagCode::CommLocalOvercap));
}

TEST(CommChecker, M005DeadQubitTeleportIsWarningOnly)
{
    Module mod = chainModule();
    LeafSchedule sched =
        TestScheduleBuilder(mod, 2).step({{0, 0}}).step({{0, 1}}).take();
    sched.appendMove(
        0, makeMove(0, Location::global(), Location::inRegion(0), false));
    // After its last use, q is teleported into region 1: pure waste.
    sched.appendEmptyStep();
    sched.appendMove(
        2, makeMove(0, Location::inRegion(0), Location::inRegion(1)));

    DiagnosticEngine diags;
    // Warnings do not fail the check.
    EXPECT_TRUE(checkCommSchedule(sched, MultiSimdArch(2), diags));
    EXPECT_EQ(diags.numErrors(), 0u);
    EXPECT_TRUE(hasCode(diags, DiagCode::CommDeadTeleport));
}

TEST(CommChecker, M006MoveSourceMismatch)
{
    Module mod = chainModule();
    LeafSchedule sched =
        TestScheduleBuilder(mod, 2).step({{0, 0}}).step({{0, 1}}).take();
    // q actually starts in global memory; the move claims region 1.
    sched.appendMove(
        0, makeMove(0, Location::inRegion(1), Location::inRegion(0), false));

    DiagnosticEngine diags;
    EXPECT_FALSE(checkCommSchedule(sched, MultiSimdArch(2), diags));
    EXPECT_TRUE(hasCode(diags, DiagCode::CommMoveSourceMismatch));
}

TEST(CommChecker, M007OperandNotResident)
{
    // No movement plan at all: the operand never reaches its region.
    Module mod = chainModule();
    LeafSchedule sched =
        TestScheduleBuilder(mod, 2).step({{0, 0}}).step({{0, 1}}).take();

    DiagnosticEngine diags;
    EXPECT_FALSE(checkCommSchedule(sched, MultiSimdArch(2), diags));
    EXPECT_TRUE(hasCode(diags, DiagCode::CommOperandNotResident));
}

TEST(CommChecker, M008RedundantMoveIsWarningOnly)
{
    Module mod = chainModule();
    LeafSchedule sched =
        TestScheduleBuilder(mod, 2).step({{0, 0}}).step({{0, 1}}).take();
    sched.appendMove(
        0, makeMove(0, Location::global(), Location::inRegion(0), false));
    // "Move" q to the region it already occupies.
    sched.appendMove(
        1, makeMove(0, Location::inRegion(0), Location::inRegion(0), false));

    DiagnosticEngine diags;
    EXPECT_TRUE(checkCommSchedule(sched, MultiSimdArch(2), diags));
    EXPECT_EQ(diags.numErrors(), 0u);
    EXPECT_TRUE(hasCode(diags, DiagCode::CommRedundantMove));
}

TEST(CommChecker, M009MemoryBankCoreOutOfRange)
{
    MultiSimdArch arch;
    std::string error;
    ASSERT_TRUE(parseTopologySpec("cores=2,k=1", arch, error)) << error;

    Module mod = chainModule();
    LeafSchedule sched =
        TestScheduleBuilder(mod, 2).step({{0, 0}}).step({{0, 1}}).take();
    sched.appendMove(
        0, makeMove(0, Location::global(), Location::inRegion(0), false));
    // Evict q to the memory bank of core 5; the machine has 2 cores.
    sched.appendEmptyStep();
    sched.appendMove(
        2, makeMove(0, Location::inRegion(0), Location::inMemory(5)));

    DiagnosticEngine diags;
    EXPECT_FALSE(checkCommSchedule(sched, arch, diags));
    EXPECT_TRUE(hasCode(diags, DiagCode::CommCoreOutOfRange));
}

TEST(CommChecker, M010LinkOversubscribedByMaskedTeleports)
{
    // Two masked teleports cross the single 0-1 link in one step under
    // link-bw=1: the analyzer would have demoted one to blocking, so a
    // plan that keeps both masked is cheating the cost model.
    MultiSimdArch arch;
    std::string error;
    ASSERT_TRUE(parseTopologySpec("cores=2,k=1,link-bw=1,map=roundrobin",
                                  arch, error))
        << error;

    Module mod("m");
    QubitId a = mod.addLocal("a");
    QubitId b = mod.addLocal("b");
    mod.addGate(GateKind::H, {a});
    mod.addGate(GateKind::H, {b});
    // a homes on core 0 and computes on core 1; b the reverse.
    LeafSchedule sched =
        TestScheduleBuilder(mod, 2).step({{0, 1}, {1, 0}}).take();
    sched.appendMove(
        0, makeMove(a, Location::inMemory(0), Location::inRegion(1), false));
    sched.appendMove(
        0, makeMove(b, Location::inMemory(1), Location::inRegion(0), false));

    DiagnosticEngine diags;
    CommCheckStats stats;
    EXPECT_FALSE(checkCommSchedule(sched, arch, diags, &stats));
    EXPECT_TRUE(hasCode(diags, DiagCode::CommLinkOvercap));
    EXPECT_EQ(stats.interCoreTeleports, 2u);

    // The identical plan is legal once the link is wide enough.
    MultiSimdArch wide;
    ASSERT_TRUE(parseTopologySpec("cores=2,k=1,link-bw=2,map=roundrobin",
                                  wide, error))
        << error;
    DiagnosticEngine clean;
    EXPECT_TRUE(checkCommSchedule(sched, wide, clean));
}

/** A denser module exercising cross-region reuse and parking. */
Module
reuseModule()
{
    Module mod("reuse");
    auto reg = mod.addRegister("q", 6);
    for (QubitId q : reg)
        mod.addGate(GateKind::PrepZ, {q});
    for (size_t i = 0; i + 1 < reg.size(); ++i)
        mod.addGate(GateKind::CNOT, {reg[i], reg[i + 1]});
    for (QubitId q : reg)
        mod.addGate(GateKind::T, {q});
    mod.addGate(GateKind::CNOT, {reg[0], reg[5]});
    for (QubitId q : reg)
        mod.addGate(GateKind::MeasZ, {q});
    return mod;
}

TEST(CommChecker, RealSchedulersPassUnderAllModes)
{
    Module mod = reuseModule();
    MultiSimdArch arch(2, 4);
    arch.localMemCapacity = 2;
    for (CommMode mode : {CommMode::Global, CommMode::GlobalWithLocalMem}) {
        {
            RcpScheduler rcp;
            LeafSchedule sched = rcp.schedule(mod, arch);
            CommunicationAnalyzer(arch, mode).annotate(sched);
            DiagnosticEngine diags;
            EXPECT_TRUE(checkCommSchedule(sched, arch, diags))
                << "RCP mode " << static_cast<int>(mode);
            EXPECT_EQ(diags.numErrors(), 0u);
        }
        {
            LpfsScheduler lpfs;
            LeafSchedule sched = lpfs.schedule(mod, arch);
            CommunicationAnalyzer(arch, mode).annotate(sched);
            DiagnosticEngine diags;
            EXPECT_TRUE(checkCommSchedule(sched, arch, diags))
                << "LPFS mode " << static_cast<int>(mode);
            EXPECT_EQ(diags.numErrors(), 0u);
        }
    }
}

TEST(CommChecker, MultiCoreAnalyzerOutputReplaysClean)
{
    Module mod = reuseModule();
    MultiSimdArch arch;
    std::string error;
    ASSERT_TRUE(parseTopologySpec(
        "cores=2,k=2,d=4,local-mem=2,link-bw=2,link-lat=3", arch,
        error))
        << error;
    for (CommMode mode : {CommMode::Global, CommMode::GlobalWithLocalMem}) {
        {
            RcpScheduler rcp;
            LeafSchedule sched = rcp.schedule(mod, arch);
            CommunicationAnalyzer(arch, mode).annotate(sched);
            DiagnosticEngine diags;
            CommCheckStats stats;
            EXPECT_TRUE(checkCommSchedule(sched, arch, diags, &stats))
                << "RCP mode " << static_cast<int>(mode);
            EXPECT_EQ(diags.numErrors(), 0u);
        }
        {
            LpfsScheduler lpfs;
            LeafSchedule sched = lpfs.schedule(mod, arch);
            CommunicationAnalyzer(arch, mode).annotate(sched);
            DiagnosticEngine diags;
            EXPECT_TRUE(checkCommSchedule(sched, arch, diags))
                << "LPFS mode " << static_cast<int>(mode);
            EXPECT_EQ(diags.numErrors(), 0u);
        }
    }
}

} // namespace
