/**
 * @file
 * Tests over the shipped example Scaffold programs: each must parse,
 * validate, survive the full toolflow under every scheduler, and — for
 * the purely classical-reversible ones — compute the right answer on
 * the classical simulator. Also covers the toolflow's optional
 * inverse-cancellation stage.
 */

#include <gtest/gtest.h>

#include <string>

#include "analysis/resource_estimator.hh"
#include "core/toolflow.hh"
#include "frontend/parser.hh"
#include "reversible_sim.hh"
#include "support/logging.hh"

#ifndef MSQ_SOURCE_DIR
#define MSQ_SOURCE_DIR "."
#endif

namespace {

using namespace msq;

std::string
programPath(const std::string &name)
{
    return std::string(MSQ_SOURCE_DIR) + "/examples/programs/" + name;
}

class ExamplePrograms : public ::testing::TestWithParam<const char *>
{};

TEST_P(ExamplePrograms, ParsesAndCompiles)
{
    Program prog = parseScaffoldFile(programPath(GetParam()));
    prog.validate();
    EXPECT_GT(ResourceEstimator(prog).programGates(), 5u);

    for (SchedulerKind kind : {SchedulerKind::Sequential,
                               SchedulerKind::Rcp, SchedulerKind::Lpfs}) {
        Program fresh = parseScaffoldFile(programPath(GetParam()));
        ToolflowConfig config;
        config.scheduler = kind;
        config.arch = MultiSimdArch(4, unbounded, 4);
        config.commMode = CommMode::GlobalWithLocalMem;
        config.rotations.sequenceLength = 30;
        ToolflowResult result = Toolflow(config).run(fresh);
        EXPECT_GT(result.scheduledCycles, 0u) << GetParam();
        EXPECT_GE(result.scheduledCycles, result.criticalPath)
            << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Files, ExamplePrograms,
                         ::testing::Values("teleport.scaffold",
                                           "qft8.scaffold",
                                           "adder4.scaffold",
                                           "grover3.scaffold"),
                         [](const auto &info) {
                             std::string name = info.param;
                             return name.substr(0, name.find('.'));
                         });

TEST(ExamplePrograms, Adder4ComputesCorrectSum)
{
    // The adder program is purely classical-reversible: flatten it and
    // simulate. main loads a=5, b=9 and adds a three times: b = 9+15=24
    // mod 16 = 8.
    Program prog = parseScaffoldFile(programPath("adder4.scaffold"));
    FlattenPass(100000).run(prog);
    const Module &main_mod = prog.module(prog.entry());
    ASSERT_TRUE(main_mod.isLeaf());

    std::vector<bool> state(main_mod.numQubits(), false);
    auto out = test::simulateReversible(main_mod, state);
    // b occupies qubits 4..7 (second declared register).
    std::vector<QubitId> b = {4, 5, 6, 7};
    EXPECT_EQ(test::readRegister(out, b), (9u + 3 * 5u) % 16u);
    // a restored by the UMA ripple.
    std::vector<QubitId> a = {0, 1, 2, 3};
    EXPECT_EQ(test::readRegister(out, a), 5u);
}

TEST(Toolflow, OptimizeStageCancelsInversePairs)
{
    // H-H padding around a kernel disappears with optimize = true.
    const char *source = R"(
        module main() {
            qbit q[2];
            H(q[0]);
            H(q[0]);
            CNOT(q[0], q[1]);
            T(q[1]);
            Tdag(q[1]);
        }
    )";
    ToolflowConfig config;
    config.arch = MultiSimdArch(2);
    config.commMode = CommMode::None;

    Program plain = parseScaffold(source);
    ToolflowResult unoptimized = Toolflow(config).run(plain);
    EXPECT_EQ(unoptimized.totalGates, 5u);

    config.optimize = true;
    Program optimized = parseScaffold(source);
    ToolflowResult result = Toolflow(config).run(optimized);
    EXPECT_EQ(result.totalGates, 1u); // only the CNOT survives
}

} // namespace
