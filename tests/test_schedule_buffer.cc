/**
 * @file
 * Unit tests for the compact SoA schedule representation: ScheduleBuffer
 * offsets and bitmap, view iteration, builder round-trips, streaming,
 * copy-on-write mutation, and the leaf-cache aliasing regression (a
 * fault injected after a cache hit must never corrupt the cached plan).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "arch/schedule.hh"
#include "sched/comm.hh"
#include "sched/leaf_cache.hh"
#include "sched/lpfs.hh"
#include "support/logging.hh"

namespace {

using namespace msq;

/** n parallel single-qubit H gates. */
Module
parallelH(unsigned n)
{
    Module mod("h");
    auto reg = mod.addRegister("q", n);
    for (QubitId q : reg)
        mod.addGate(GateKind::H, {q});
    return mod;
}

TEST(ScheduleBuffer, EmptySchedule)
{
    Module mod("empty");
    LeafSchedule sched(mod, 4);
    EXPECT_EQ(sched.computeTimesteps(), 0u);
    EXPECT_EQ(sched.scheduledOps(), 0u);
    EXPECT_EQ(sched.width(), 0u);
    EXPECT_EQ(sched.totalCycles(), 0u);
    EXPECT_EQ(sched.teleportMoves(), 0u);
}

TEST(ScheduleBuffer, BuilderRoundTrip)
{
    Module mod("m");
    auto reg = mod.addRegister("q", 4);
    mod.addGate(GateKind::H, {reg[0]});
    mod.addGate(GateKind::H, {reg[1]});
    mod.addGate(GateKind::T, {reg[2]});
    mod.addGate(GateKind::CNOT, {reg[0], reg[1]});

    ScheduleBuilder builder(mod, 4);
    // Step 0: regions 0 (H x2) and 3 (T); regions 1-2 empty.
    builder.beginStep();
    builder.slot(0).kind = GateKind::H;
    builder.slot(0).ops = {0, 1};
    builder.slot(3).kind = GateKind::T;
    builder.slot(3).ops = {2};
    builder.endStep();
    // Step 1: fully empty.
    builder.beginStep();
    builder.endStep();
    // Step 2: region 2 only.
    builder.beginStep();
    builder.slot(2).kind = GateKind::CNOT;
    builder.slot(2).ops = {3};
    builder.endStep();
    LeafSchedule sched = builder.finish();

    const ScheduleBuffer &buf = sched.buffer();
    EXPECT_EQ(buf.numSteps(), 3u);
    // Only active (step, region) pairs get a slot record.
    EXPECT_EQ(buf.slots.size(), 3u);
    EXPECT_EQ(buf.ops.size(), 4u);

    TimestepView s0 = sched.step(0);
    EXPECT_EQ(s0.activeRegions(), 2u);
    EXPECT_EQ(s0.slot(0).region(), 0u);
    EXPECT_EQ(s0.slot(0).kind(), GateKind::H);
    EXPECT_EQ(s0.slot(0).numOps(), 2u);
    EXPECT_EQ(s0.slot(1).region(), 3u);
    EXPECT_EQ(s0.slot(1).ops()[0], 2u);
    EXPECT_TRUE(s0.regionActive(0));
    EXPECT_FALSE(s0.regionActive(1));
    EXPECT_FALSE(s0.regionActive(2));
    EXPECT_TRUE(s0.regionActive(3));

    TimestepView s1 = sched.step(1);
    EXPECT_EQ(s1.activeRegions(), 0u);
    for (unsigned r = 0; r < 4; ++r)
        EXPECT_FALSE(s1.regionActive(r));

    TimestepView s2 = sched.step(2);
    EXPECT_EQ(s2.activeRegions(), 1u);
    EXPECT_EQ(s2.slot(0).region(), 2u);
    EXPECT_EQ(s2.slot(0).kind(), GateKind::CNOT);

    EXPECT_EQ(sched.width(), 2u);
    EXPECT_EQ(sched.scheduledOps(), 4u);
}

TEST(ScheduleBuffer, OpRangesTileTheStream)
{
    Module mod = parallelH(6);
    ScheduleBuilder builder(mod, 3);
    builder.beginStep();
    builder.slot(0).kind = GateKind::H;
    builder.slot(0).ops = {0, 1};
    builder.slot(1).kind = GateKind::H;
    builder.slot(1).ops = {2};
    builder.endStep();
    builder.beginStep();
    builder.slot(2).kind = GateKind::H;
    builder.slot(2).ops = {3, 4, 5};
    builder.endStep();
    LeafSchedule sched = builder.finish();

    const ScheduleBuffer &buf = sched.buffer();
    // Each slot's op range begins exactly where the previous one ended.
    uint32_t prev_end = 0;
    for (uint32_t i = 0; i < buf.slots.size(); ++i) {
        EXPECT_EQ(buf.opBegin(i), prev_end);
        EXPECT_GT(buf.slots[i].opEnd, prev_end); // never empty
        prev_end = buf.slots[i].opEnd;
    }
    EXPECT_EQ(prev_end, buf.ops.size());
}

TEST(ScheduleBuffer, SlotIterationIsRegionAscending)
{
    Module mod = parallelH(3);
    ScheduleBuilder builder(mod, 8);
    builder.beginStep();
    // Drafted out of order; sealed region-sorted.
    builder.slot(5).kind = GateKind::H;
    builder.slot(5).ops = {2};
    builder.slot(1).kind = GateKind::H;
    builder.slot(1).ops = {0};
    builder.slot(3).kind = GateKind::H;
    builder.slot(3).ops = {1};
    builder.endStep();
    LeafSchedule sched = builder.finish();

    std::vector<unsigned> regions;
    for (RegionSlotView slot : sched.step(0))
        regions.push_back(slot.region());
    EXPECT_EQ(regions, (std::vector<unsigned>{1, 3, 5}));
}

TEST(ScheduleBuffer, BitmapSpansMultipleWords)
{
    Module mod = parallelH(2);
    const unsigned k = 130; // 3 bitmap words per step
    ScheduleBuilder builder(mod, k);
    builder.beginStep();
    builder.slot(0).kind = GateKind::H;
    builder.slot(0).ops = {0};
    builder.slot(129).kind = GateKind::H;
    builder.slot(129).ops = {1};
    builder.endStep();
    LeafSchedule sched = builder.finish();

    EXPECT_EQ(sched.buffer().wordsPerStep(), 3u);
    TimestepView step = sched.step(0);
    EXPECT_TRUE(step.regionActive(0));
    EXPECT_TRUE(step.regionActive(129));
    for (unsigned r = 1; r < 129; ++r)
        EXPECT_FALSE(step.regionActive(r));
}

TEST(ScheduleBuffer, BuilderGuardsAgainstMisuse)
{
    Module mod = parallelH(1);
    ScheduleBuilder builder(mod, 1);
    EXPECT_THROW(builder.endStep(), PanicError);
    builder.beginStep();
    EXPECT_THROW(builder.beginStep(), PanicError);
    EXPECT_THROW(builder.finish(), PanicError);
}

TEST(ScheduleBuffer, AppendMoveShiftsLaterSteps)
{
    Module mod = parallelH(2);
    ScheduleBuilder builder(mod, 1);
    for (uint32_t i = 0; i < 2; ++i) {
        builder.beginStep();
        builder.slot(0).kind = GateKind::H;
        builder.slot(0).ops = {i};
        builder.endStep();
    }
    LeafSchedule sched = builder.finish();
    Move late{1, Location::global(), Location::inRegion(0), true};
    sched.appendMove(1, late);
    Move early{0, Location::global(), Location::inRegion(0), false};
    sched.appendMove(0, early);

    ASSERT_EQ(sched.step(0).moves().size(), 1u);
    EXPECT_EQ(sched.step(0).moves()[0].qubit, 0u);
    ASSERT_EQ(sched.step(1).moves().size(), 1u);
    EXPECT_EQ(sched.step(1).moves()[0].qubit, 1u);
    EXPECT_THROW(sched.appendMove(2, early), PanicError);
}

TEST(ScheduleBuffer, AppendEmptyStep)
{
    Module mod = parallelH(1);
    LeafSchedule sched(mod, 2);
    sched.appendEmptyStep();
    sched.appendEmptyStep();
    EXPECT_EQ(sched.computeTimesteps(), 2u);
    EXPECT_EQ(sched.step(1).activeRegions(), 0u);
    EXPECT_TRUE(sched.step(1).moves().empty());
    EXPECT_EQ(sched.totalCycles(), 2u); // gate phases only
}

/** Records the streaming callback sequence as a compact string. */
struct RecordingSink : ScheduleSink
{
    std::string log;

    void beginSchedule(const LeafSchedule &) override { log += "B"; }
    void
    beginStep(const TimestepView &step) override
    {
        log += "b" + std::to_string(step.index());
    }
    void
    slot(const RegionSlotView &slot) override
    {
        log += "s" + std::to_string(slot.region());
    }
    void move(const Move &) override { log += "m"; }
    void endStep(const TimestepView &) override { log += "e"; }
    void endSchedule() override { log += "E"; }
};

TEST(ScheduleBuffer, StreamVisitsInOrder)
{
    Module mod = parallelH(3);
    ScheduleBuilder builder(mod, 2);
    builder.beginStep();
    builder.slot(0).kind = GateKind::H;
    builder.slot(0).ops = {0};
    builder.slot(1).kind = GateKind::H;
    builder.slot(1).ops = {1};
    builder.endStep();
    builder.beginStep();
    builder.slot(0).kind = GateKind::H;
    builder.slot(0).ops = {2};
    builder.endStep();
    LeafSchedule sched = builder.finish();
    sched.appendMove(0,
                     {0, Location::global(), Location::inRegion(0), false});

    RecordingSink sink;
    sched.stream(sink);
    EXPECT_EQ(sink.log, "Bb0s0s1meb1s0eE");

    RecordingSink truncated;
    sched.stream(truncated, 1);
    EXPECT_EQ(truncated.log, "Bb0s0s1meE");
}

TEST(ScheduleBuffer, WalkerCursorsAllSteps)
{
    Module mod = parallelH(3);
    ScheduleBuilder builder(mod, 1);
    for (uint32_t i = 0; i < 3; ++i) {
        builder.beginStep();
        builder.slot(0).kind = GateKind::H;
        builder.slot(0).ops = {i};
        builder.endStep();
    }
    LeafSchedule sched = builder.finish();

    uint64_t visited = 0;
    for (ScheduleWalker walker(sched); !walker.atEnd(); walker.next()) {
        EXPECT_EQ(walker.index(), visited);
        EXPECT_EQ(walker.step().slot(0).ops()[0], visited);
        ++visited;
    }
    EXPECT_EQ(visited, 3u);
}

TEST(ScheduleBuffer, CopyOnWriteDetachesAliasedBuffers)
{
    Module mod = parallelH(2);
    LpfsScheduler lpfs;
    LeafSchedule sched = lpfs.schedule(mod, MultiSimdArch(2));

    LeafSchedule alias(mod, sched.sharedBuffer());
    ASSERT_EQ(alias.sharedBuffer().get(), sched.sharedBuffer().get());

    alias.appendMove(0,
                     {0, Location::global(), Location::inRegion(0), true});
    // The alias detached; the original handle's buffer is untouched.
    EXPECT_NE(alias.sharedBuffer().get(), sched.sharedBuffer().get());
    EXPECT_EQ(sched.step(0).moves().size(), 0u);
    EXPECT_EQ(alias.step(0).moves().size(), 1u);
}

// Regression for the shared-cache mutation hazard: with the old mutable
// steps() accessor, msq-verify's fault injection (or any consumer)
// could silently corrupt a plan other handles shared. Now every cached
// buffer copies on mutation because the cache holds its own reference.
TEST(LeafScheduleCacheCow, FaultInjectionAfterHitLeavesCacheIntact)
{
    Module mod("m");
    auto reg = mod.addRegister("q", 3);
    mod.addGate(GateKind::H, {reg[0]});
    mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
    mod.addGate(GateKind::T, {reg[2]});

    MultiSimdArch arch(2);
    LpfsScheduler lpfs;
    LeafSchedule sched = lpfs.schedule(mod, arch);
    CommunicationAnalyzer comm(arch, CommMode::Global);

    LeafScheduleCache cache;
    auto result = std::make_shared<LeafScheduleResult>();
    result->stats = comm.annotate(sched);
    result->schedule = sched.sharedBuffer();
    cache.insert("key", std::move(result));

    auto hit = cache.lookup("key");
    ASSERT_TRUE(hit);
    ASSERT_TRUE(hit->schedule);
    const uint64_t pristine_moves = hit->schedule->moves.size();

    // A consumer rebinds the cached plan and injects a fault into it.
    LeafSchedule rebound(mod, hit->schedule);
    rebound.appendMove(
        0, {reg[2], Location::inRegion(0), Location::global(), true});
    EXPECT_EQ(rebound.buffer().moves.size(), pristine_moves + 1);

    // The cached buffer is byte-identical to before the injection...
    EXPECT_EQ(hit->schedule->moves.size(), pristine_moves);
    EXPECT_NE(rebound.sharedBuffer().get(), hit->schedule.get());

    // ...and a second hit still serves the pristine plan.
    auto hit2 = cache.lookup("key");
    LeafSchedule again(mod, hit2->schedule);
    EXPECT_EQ(again.buffer().moves.size(), pristine_moves);
    EXPECT_EQ(again.sharedBuffer().get(), hit->schedule.get());
}

// The analyzer re-annotates through MoveAnnotator, which also must
// detach instead of clearing a cached plan's movement stream in place.
TEST(LeafScheduleCacheCow, ReannotationDetachesCachedBuffer)
{
    Module mod("m");
    QubitId a = mod.addLocal("a");
    QubitId b = mod.addLocal("b");
    mod.addGate(GateKind::H, {a});
    mod.addGate(GateKind::CNOT, {a, b});

    MultiSimdArch arch(2);
    LpfsScheduler lpfs;
    LeafSchedule sched = lpfs.schedule(mod, arch);
    CommunicationAnalyzer comm(arch, CommMode::Global);
    comm.annotate(sched);

    std::shared_ptr<const ScheduleBuffer> cached = sched.sharedBuffer();
    const uint64_t cached_moves = cached->moves.size();

    LeafSchedule rebound(mod, cached);
    CommStats stats = comm.annotate(rebound);
    EXPECT_EQ(cached->moves.size(), cached_moves);
    EXPECT_NE(rebound.sharedBuffer().get(), cached.get());
    // Determinism: the re-derived plan matches the cached one.
    EXPECT_EQ(rebound.buffer().moves.size(), cached_moves);
    EXPECT_EQ(stats.totalCycles, rebound.totalCycles());
}

TEST(ScheduleBuffer, ByteSizeCoversAllArrays)
{
    Module mod = parallelH(8);
    LpfsScheduler lpfs;
    LeafSchedule sched = lpfs.schedule(mod, MultiSimdArch(4));
    const ScheduleBuffer &buf = sched.buffer();
    uint64_t floor = sizeof(ScheduleBuffer) +
                     buf.slots.size() * sizeof(ScheduleBuffer::Slot) +
                     buf.ops.size() * sizeof(uint32_t);
    EXPECT_GE(buf.byteSize(), floor);
}

TEST(ScheduleBuffer, WalkerOverAllEmptySteps)
{
    // A schedule made purely of empty steps: the walker and the sink
    // must still visit every step, each one idle.
    Module mod = parallelH(1);
    LeafSchedule sched(mod, 4);
    for (int i = 0; i < 3; ++i)
        sched.appendEmptyStep();

    uint64_t visited = 0;
    for (ScheduleWalker walker(sched); !walker.atEnd(); walker.next()) {
        TimestepView step = walker.step();
        EXPECT_EQ(step.activeRegions(), 0u);
        EXPECT_TRUE(step.moves().empty());
        EXPECT_EQ(step.movePhaseCycles(), 0u);
        EXPECT_FALSE(step.hasBlockingGlobalMove());
        ++visited;
    }
    EXPECT_EQ(visited, 3u);

    RecordingSink sink;
    sched.stream(sink);
    EXPECT_EQ(sink.log, "Bb0eb1eb2eE");
    EXPECT_EQ(sched.totalCycles(), 3u); // idle gate phases still tick
}

TEST(ScheduleBuffer, MoveOnlyTimestepCosts)
{
    // A step with no compute, only movement. A blocking teleport costs
    // a full teleport phase; a masked one rides along for free; a
    // local-memory move alone costs the (cheaper) ballistic phase.
    Module mod = parallelH(3);
    LeafSchedule sched(mod, 2);
    sched.appendEmptyStep();
    sched.appendEmptyStep();
    sched.appendMove(
        0, {0, Location::global(), Location::inRegion(0), true});
    sched.appendMove(
        0, {1, Location::global(), Location::inRegion(1), false});
    sched.appendMove(0, {2, Location::inRegion(0),
                         Location::inLocalMem(0), false});

    TimestepView step = sched.step(0);
    EXPECT_EQ(step.activeRegions(), 0u);
    ASSERT_EQ(step.moves().size(), 3u);
    EXPECT_TRUE(step.hasBlockingGlobalMove());
    EXPECT_TRUE(step.hasLocalMove());
    EXPECT_EQ(step.blockingMoveCount(), 1u);
    EXPECT_EQ(step.movePhaseCycles(),
              MultiSimdArch::teleportCycles);

    // 2 gate phases + one teleport phase on step 0, step 1 bare.
    EXPECT_EQ(sched.totalCycles(),
              2u + MultiSimdArch::teleportCycles);
    EXPECT_EQ(sched.teleportMoves(), 2u);
    EXPECT_EQ(sched.localMoves(), 1u);

    // Masked-and-local only (no blocking): ballistic phase cost.
    TimestepView idle = sched.step(1);
    EXPECT_EQ(idle.movePhaseCycles(), 0u);
    sched.appendMove(1, {2, Location::inLocalMem(0),
                         Location::inRegion(0), false});
    EXPECT_EQ(sched.step(1).movePhaseCycles(),
              MultiSimdArch::localMoveCycles);
}

TEST(ScheduleBuffer, FullyIdleRegionsAroundOneActiveSlot)
{
    // k=4 but only region 2 computes: the bitmap must report the other
    // three idle and slot iteration must skip them entirely.
    Module mod = parallelH(1);
    ScheduleBuilder builder(mod, 4);
    builder.beginStep();
    builder.slot(2).kind = GateKind::H;
    builder.slot(2).ops = {0};
    builder.endStep();
    LeafSchedule sched = builder.finish();

    TimestepView step = sched.step(0);
    EXPECT_EQ(step.activeRegions(), 1u);
    EXPECT_FALSE(step.regionActive(0));
    EXPECT_FALSE(step.regionActive(1));
    EXPECT_TRUE(step.regionActive(2));
    EXPECT_FALSE(step.regionActive(3));
    unsigned slots = 0;
    for (RegionSlotView slot : step) {
        EXPECT_EQ(slot.region(), 2u);
        ++slots;
    }
    EXPECT_EQ(slots, 1u);
}

} // namespace
