/**
 * @file
 * Unit tests for the support library: logging, strings, rng, stats.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "support/logging.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "support/strings.hh"
#include "support/thread_pool.hh"

namespace {

using namespace msq;

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom"), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad input"), FatalError);
}

TEST(Logging, PanicMessagePreserved)
{
    try {
        panic("invariant violated");
        FAIL() << "panic returned";
    } catch (const PanicError &err) {
        EXPECT_NE(std::string(err.what()).find("invariant violated"),
                  std::string::npos);
    }
}

TEST(Logging, VerboseToggle)
{
    setVerbose(true);
    EXPECT_TRUE(verbose());
    setVerbose(false);
    EXPECT_FALSE(verbose());
}

TEST(Strings, CsprintfFormats)
{
    EXPECT_EQ(csprintf("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(csprintf("%05u", 7u), "00007");
    EXPECT_EQ(csprintf("empty"), "empty");
}

TEST(Strings, JoinAndSplitRoundTrip)
{
    std::vector<std::string> parts = {"a", "bb", "ccc"};
    EXPECT_EQ(join(parts, ","), "a,bb,ccc");
    EXPECT_EQ(split("a,bb,ccc", ','), parts);
}

TEST(Strings, SplitDropsEmptyByDefault)
{
    EXPECT_EQ(split("a,,b", ',').size(), 2u);
    EXPECT_EQ(split("a,,b", ',', true).size(), 3u);
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("z"), "z");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(startsWith("module foo", "module"));
    EXPECT_FALSE(startsWith("mod", "module"));
}

TEST(Strings, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1234567890ULL), "1,234,567,890");
}

TEST(Rng, Deterministic)
{
    SplitMix64 a(123);
    SplitMix64 b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, NextBelowInRange)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, HashStringIsStable)
{
    EXPECT_EQ(hashString("grover"), hashString("grover"));
    EXPECT_NE(hashString("grover"), hashString("shor"));
}

TEST(Stats, AsciiTable)
{
    ResultTable table("demo");
    table.setHeader({"name", "value"});
    table.beginRow();
    table.addCell(std::string("x"));
    table.addCell(static_cast<long long>(12));
    std::ostringstream os;
    table.printAscii(os);
    EXPECT_NE(os.str().find("demo"), std::string::npos);
    EXPECT_NE(os.str().find("12"), std::string::npos);
}

TEST(Stats, CsvOutput)
{
    ResultTable table("demo");
    table.setHeader({"a", "b"});
    table.beginRow();
    table.addCell(1.5, 2);
    table.addCell(std::string("z"));
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1.50,z\n");
}

TEST(Stats, HeaderAfterRowsPanics)
{
    ResultTable table("demo");
    table.setHeader({"a"});
    table.beginRow();
    table.addCell(std::string("x"));
    EXPECT_THROW(table.setHeader({"b"}), PanicError);
}

TEST(Stats, CellBeforeRowPanics)
{
    ResultTable table("demo");
    table.setHeader({"a"});
    EXPECT_THROW(table.addCell(std::string("x")), PanicError);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.numThreads(), threads);
        std::vector<std::atomic<int>> hits(1000);
        for (auto &h : hits)
            h = 0;
        pool.parallelFor(hits.size(),
                         [&](uint64_t i) { hits[i].fetch_add(1); });
        for (size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ZeroSelectsHardwareThreads)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), ThreadPool::hardwareThreads());
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, EmptyAndSingleBatches)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](uint64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](uint64_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (int batch = 0; batch < 10; ++batch) {
        std::atomic<uint64_t> sum{0};
        pool.parallelFor(100, [&](uint64_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 4950u);
    }
}

TEST(ThreadPool, LowestIndexExceptionWins)
{
    // Several tasks throw; the batch must rethrow the one a sequential
    // loop would have hit first.
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        try {
            pool.parallelFor(64, [&](uint64_t i) {
                if (i % 7 == 3) // first failing index is 3
                    throw std::runtime_error(
                        "task " + std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "task 3");
        }
    }
}

} // namespace
