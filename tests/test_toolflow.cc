/**
 * @file
 * End-to-end toolflow integration tests: full pipeline runs on built and
 * parsed programs, scheduler comparisons, communication-mode orderings,
 * and the paper's qualitative claims at toy scale.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"

#include "core/toolflow.hh"
#include "frontend/parser.hh"
#include "workloads/workloads.hh"

namespace {

using namespace msq;

/** A mixed program with rotations, composites and hierarchy. */
Program
mixedProgram()
{
    return parseScaffold(R"(
        module kernel(qbit a, qbit b, qbit c) {
            Toffoli(a, b, c);
            Rz(c, 0.77);
            CNOT(a, b);
        }
        module main() {
            qbit q[3];
            qbit r[3];
            H(q[0]);
            repeat 20 kernel(q[0], q[1], q[2]);
            repeat 20 kernel(r[0], r[1], r[2]);
            MeasZ(q[0]);
        }
    )");
}

ToolflowConfig
baseConfig(SchedulerKind kind, CommMode mode)
{
    ToolflowConfig config;
    config.scheduler = kind;
    config.commMode = mode;
    config.arch = MultiSimdArch(4, unbounded,
                                mode == CommMode::GlobalWithLocalMem
                                    ? unbounded
                                    : 0);
    config.rotations.sequenceLength = 50;
    return config;
}

TEST(Toolflow, RunsEndToEnd)
{
    Program prog = mixedProgram();
    ToolflowResult result =
        Toolflow(baseConfig(SchedulerKind::Lpfs, CommMode::Global))
            .run(prog);
    EXPECT_GT(result.totalGates, 1000u);
    EXPECT_GT(result.criticalPath, 0u);
    EXPECT_LE(result.criticalPath, result.totalGates);
    EXPECT_GT(result.scheduledCycles, 0u);
    EXPECT_GT(result.qubits, 5u);
    EXPECT_GT(result.speedupVsNaive, 1.0);
    EXPECT_DOUBLE_EQ(result.speedupVsNaive,
                     5.0 * result.speedupVsSequential);
}

TEST(Toolflow, NoCommBeatsOrMatchesComm)
{
    Program p1 = mixedProgram();
    Program p2 = mixedProgram();
    auto free_comm =
        Toolflow(baseConfig(SchedulerKind::Lpfs, CommMode::None)).run(p1);
    auto with_comm =
        Toolflow(baseConfig(SchedulerKind::Lpfs, CommMode::Global))
            .run(p2);
    EXPECT_LE(free_comm.scheduledCycles, with_comm.scheduledCycles);
}

TEST(Toolflow, LocalMemoryNeverHurts)
{
    for (SchedulerKind kind : {SchedulerKind::Rcp, SchedulerKind::Lpfs}) {
        Program p1 = mixedProgram();
        Program p2 = mixedProgram();
        auto global =
            Toolflow(baseConfig(kind, CommMode::Global)).run(p1);
        auto local =
            Toolflow(baseConfig(kind, CommMode::GlobalWithLocalMem))
                .run(p2);
        EXPECT_LE(local.scheduledCycles, global.scheduledCycles)
            << schedulerKindName(kind);
    }
}

TEST(Toolflow, ParallelSchedulersBeatSequentialBaseline)
{
    Program p1 = mixedProgram();
    Program p2 = mixedProgram();
    auto seq =
        Toolflow(baseConfig(SchedulerKind::Sequential, CommMode::None))
            .run(p1);
    auto lpfs =
        Toolflow(baseConfig(SchedulerKind::Lpfs, CommMode::None)).run(p2);
    EXPECT_LT(lpfs.scheduledCycles, seq.scheduledCycles);
    // No schedule can beat the critical path under free communication.
    EXPECT_GE(lpfs.scheduledCycles, lpfs.criticalPath);
}

TEST(Toolflow, SchedulerNames)
{
    EXPECT_STREQ(schedulerKindName(SchedulerKind::Sequential),
                 "sequential");
    EXPECT_STREQ(schedulerKindName(SchedulerKind::Rcp), "rcp");
    EXPECT_STREQ(schedulerKindName(SchedulerKind::Lpfs), "lpfs");
}

TEST(Toolflow, EmptyProgramYieldsZeroSpeedups)
{
    // A program whose entry schedules zero cycles must not divide by
    // zero when computing the speedup metrics: both stay 0.0.
    for (SchedulerKind kind : {SchedulerKind::Sequential,
                               SchedulerKind::Rcp, SchedulerKind::Lpfs}) {
        Program prog = parseScaffold(R"(
            module main() {
                qbit q[2];
            }
        )");
        ToolflowResult result =
            Toolflow(baseConfig(kind, CommMode::Global)).run(prog);
        EXPECT_EQ(result.scheduledCycles, 0u);
        EXPECT_EQ(result.speedupVsSequential, 0.0);
        EXPECT_EQ(result.speedupVsNaive, 0.0);
    }
}

TEST(Toolflow, RotationPresets)
{
    EXPECT_TRUE(Toolflow::rotationPresetFor("shors").outline);
    EXPECT_FALSE(Toolflow::rotationPresetFor("gse").outline);
}

TEST(Toolflow, MakeSchedulerFactories)
{
    EXPECT_STREQ(
        Toolflow::makeScheduler(SchedulerKind::Sequential)->name(),
        "sequential");
    EXPECT_STREQ(Toolflow::makeScheduler(SchedulerKind::Rcp)->name(),
                 "rcp");
    EXPECT_STREQ(Toolflow::makeScheduler(SchedulerKind::Lpfs)->name(),
                 "lpfs");
}

TEST(Toolflow, GseFavorsLpfsOverRcp)
{
    // Paper §5.2: GSE's in-place chains give LPFS its largest edge.
    Program p1 = workloads::buildGse(6, 4);
    Program p2 = workloads::buildGse(6, 4);
    auto cfg_rcp = baseConfig(SchedulerKind::Rcp, CommMode::Global);
    auto cfg_lpfs = baseConfig(SchedulerKind::Lpfs, CommMode::Global);
    auto rcp = Toolflow(cfg_rcp).run(p1);
    auto lpfs = Toolflow(cfg_lpfs).run(p2);
    EXPECT_LT(lpfs.scheduledCycles, rcp.scheduledCycles);
}

TEST(Toolflow, WorksOnEveryScaledWorkload)
{
    for (const auto &spec : workloads::scaledParams()) {
        Program prog = spec.build();
        ToolflowConfig config =
            baseConfig(SchedulerKind::Lpfs, CommMode::Global);
        config.rotations = Toolflow::rotationPresetFor(spec.shortName);
        config.rotations.sequenceLength = 40; // keep tests fast
        ToolflowResult result = Toolflow(config).run(prog);
        EXPECT_GT(result.speedupVsNaive, 1.0) << spec.name;
        EXPECT_GE(result.scheduledCycles, result.criticalPath)
            << spec.name;
    }
}

TEST(Toolflow, DecomposeCanBeDisabled)
{
    Program prog = parseScaffold(R"(
        module main() { qbit q[2]; H(q[0]); CNOT(q[0], q[1]); }
    )");
    ToolflowConfig config = baseConfig(SchedulerKind::Rcp,
                                       CommMode::None);
    config.decompose = false;
    ToolflowResult result = Toolflow(config).run(prog);
    EXPECT_EQ(result.totalGates, 2u);
}

TEST(Toolflow, MoreRegionsNeverHurt)
{
    // Monotonicity property: on every communication mode, growing k can
    // only shorten (or preserve) the schedule.
    for (const char *name : {"gse", "tfp", "grovers"}) {
        auto spec = workloads::findWorkload(workloads::scaledParams(),
                                            name);
        for (CommMode mode : {CommMode::None, CommMode::Global}) {
            uint64_t previous = ~uint64_t{0};
            for (unsigned k : {1u, 2u, 4u}) {
                Program prog = spec.build();
                ToolflowConfig config;
                config.scheduler = SchedulerKind::Lpfs;
                config.commMode = mode;
                config.arch = MultiSimdArch(k);
                config.rotations =
                    Toolflow::rotationPresetFor(spec.shortName);
                config.rotations.sequenceLength = 40;
                ToolflowResult result = Toolflow(config).run(prog);
                EXPECT_LE(result.scheduledCycles, previous)
                    << name << " " << commModeName(mode) << " k=" << k;
                previous = result.scheduledCycles;
            }
        }
    }
}

TEST(Toolflow, EprBandwidthMonotone)
{
    auto spec = workloads::findWorkload(workloads::scaledParams(), "tfp");
    uint64_t previous = ~uint64_t{0};
    for (uint64_t bandwidth : {uint64_t{1}, uint64_t{4}, unbounded}) {
        Program prog = spec.build();
        ToolflowConfig config;
        config.scheduler = SchedulerKind::Lpfs;
        config.commMode = CommMode::Global;
        config.arch = MultiSimdArch(4).withEprBandwidth(bandwidth);
        ToolflowResult result = Toolflow(config).run(prog);
        EXPECT_LE(result.scheduledCycles, previous);
        previous = result.scheduledCycles;
    }
}

} // namespace
