/**
 * @file
 * Tests for the extension components: invocation counting, gate-mix
 * analysis, EPR channel bandwidth constraints, and the schedule timeline
 * printer.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "analysis/gate_mix.hh"
#include "analysis/invocation_counts.hh"
#include "sched/comm.hh"
#include "sched/lpfs.hh"
#include "sched/schedule_printer.hh"
#include "support/logging.hh"

namespace {

using namespace msq;

Program
repeatedHierarchy()
{
    Program prog;
    ModuleId leaf = prog.addModule("leaf");
    {
        Module &mod = prog.module(leaf);
        QubitId q = mod.addParam("q");
        mod.addGate(GateKind::T, {q});
        mod.addGate(GateKind::H, {q});
        mod.addGate(GateKind::MeasZ, {q});
    }
    ModuleId mid = prog.addModule("mid");
    {
        Module &mod = prog.module(mid);
        QubitId q = mod.addParam("q");
        QubitId r = mod.addLocal("r");
        mod.addGate(GateKind::CNOT, {q, r});
        mod.addCall(leaf, {q}, 4);
        mod.addCall(leaf, {r}, 1);
    }
    ModuleId top = prog.addModule("top");
    {
        Module &mod = prog.module(top);
        QubitId q = mod.addLocal("q");
        mod.addCall(mid, {q}, 10);
    }
    prog.setEntry(top);
    return prog;
}

TEST(InvocationCounts, MultipliesThroughHierarchy)
{
    Program prog = repeatedHierarchy();
    InvocationCountAnalysis inv(prog);
    EXPECT_EQ(inv.invocations(prog.findModule("top")), 1u);
    EXPECT_EQ(inv.invocations(prog.findModule("mid")), 10u);
    // leaf: 10 * (4 + 1).
    EXPECT_EQ(inv.invocations(prog.findModule("leaf")), 50u);
}

TEST(InvocationCounts, UnreachableModuleIsZero)
{
    Program prog = repeatedHierarchy();
    ModuleId orphan = prog.addModule("orphan");
    InvocationCountAnalysis inv(prog);
    EXPECT_EQ(inv.invocations(orphan), 0u);
}

TEST(GateMix, HierarchicalCounts)
{
    Program prog = repeatedHierarchy();
    GateMixAnalysis mix(prog);
    const GateMix &program = mix.programMix();
    // leaf runs 50 times: 50 T, 50 H, 50 MeasZ; mid runs 10: 10 CNOT.
    EXPECT_EQ(program.count(GateKind::T), 50u);
    EXPECT_EQ(program.count(GateKind::H), 50u);
    EXPECT_EQ(program.measurementCount(), 50u);
    EXPECT_EQ(program.twoQubitCount(), 10u);
    EXPECT_EQ(program.tCount(), 50u);
    EXPECT_EQ(program.total(), 160u);
}

TEST(GateMix, PerModuleCounts)
{
    Program prog = repeatedHierarchy();
    GateMixAnalysis mix(prog);
    const GateMix &leaf = mix.mix(prog.findModule("leaf"));
    EXPECT_EQ(leaf.total(), 3u);
    const GateMix &mid = mix.mix(prog.findModule("mid"));
    EXPECT_EQ(mid.total(), 1u + 5u * 3u);
}

uint64_t
phaseCycles(const std::vector<Move> &moves,
            uint64_t epr_bandwidth = unbounded)
{
    return movePhaseCycles(moves.data(), moves.data() + moves.size(),
                           epr_bandwidth);
}

TEST(EprBandwidth, UnboundedMatchesBaseModel)
{
    std::vector<Move> moves;
    moves.push_back({0, Location::global(), Location::inRegion(0), true});
    moves.push_back({1, Location::global(), Location::inRegion(0), true});
    EXPECT_EQ(phaseCycles(moves), 4u);
    EXPECT_EQ(phaseCycles(moves, unbounded), 4u);
}

TEST(EprBandwidth, FiniteBandwidthSerializesPhases)
{
    std::vector<Move> moves;
    for (uint32_t q = 0; q < 5; ++q)
        moves.push_back(
            {q, Location::global(), Location::inRegion(0), true});
    EXPECT_EQ(blockingMoveCount(moves.data(),
                                moves.data() + moves.size()),
              5u);
    EXPECT_EQ(phaseCycles(moves, 5), 4u);
    EXPECT_EQ(phaseCycles(moves, 2), 12u); // ceil(5/2) = 3 phases
    EXPECT_EQ(phaseCycles(moves, 1), 20u);
}

TEST(EprBandwidth, MaskedMovesDontConsumeBandwidth)
{
    std::vector<Move> moves;
    for (uint32_t q = 0; q < 5; ++q)
        moves.push_back(
            {q, Location::global(), Location::inRegion(0), false});
    EXPECT_EQ(phaseCycles(moves, 1), 0u);
}

TEST(EprBandwidth, AnalyzerReportsPeakDemand)
{
    // 4 qubits used in region 0 at step 0, then all four used across
    // regions at step 1: four tight teleports in one step.
    Module mod("m");
    mod.addRegister("q", 8);
    for (int i = 0; i < 4; ++i)
        mod.addGate(GateKind::H, {static_cast<QubitId>(i)});
    for (int i = 0; i < 4; ++i)
        mod.addGate(GateKind::T, {static_cast<QubitId>(i)});
    ScheduleBuilder builder(mod, 4);
    builder.beginStep();
    builder.slot(0).kind = GateKind::H;
    builder.slot(0).ops = {0, 1, 2, 3};
    builder.endStep();
    builder.beginStep();
    for (unsigned r = 0; r < 4; ++r) {
        builder.slot(r).kind = GateKind::T;
        builder.slot(r).ops = {4 + r};
    }
    builder.endStep();
    LeafSchedule built = builder.finish();
    MultiSimdArch arch(4);
    CommunicationAnalyzer comm(arch, CommMode::Global);
    CommStats stats = comm.annotate(built);
    // q1..q3 teleport tightly out of region 0 into regions 1..3.
    EXPECT_EQ(stats.peakBlockingMovesPerStep, 3u);

    // A unit-bandwidth channel triples that step's movement phase.
    MultiSimdArch narrow = arch.withEprBandwidth(1);
    CommunicationAnalyzer comm_narrow(narrow, CommMode::Global);
    CommStats stats_narrow = comm_narrow.annotate(built);
    EXPECT_EQ(stats_narrow.totalCycles, stats.totalCycles + 2 * 4);
}

TEST(TimelinePrinter, ShowsRegionsAndMoves)
{
    Module mod("m");
    QubitId a = mod.addLocal("a");
    QubitId b = mod.addLocal("b");
    mod.addGate(GateKind::H, {a});
    mod.addGate(GateKind::CNOT, {a, b});

    MultiSimdArch arch(2);
    LpfsScheduler lpfs;
    LeafSchedule sched = lpfs.schedule(mod, arch);
    CommunicationAnalyzer comm(arch, CommMode::Global);
    comm.annotate(sched);

    std::ostringstream os;
    printTimeline(os, sched);
    std::string text = os.str();
    EXPECT_NE(text.find("t0"), std::string::npos);
    EXPECT_NE(text.find("H:"), std::string::npos);
    EXPECT_NE(text.find("CNOT:"), std::string::npos);
    EXPECT_NE(text.find("mem->r"), std::string::npos);
}

TEST(TimelinePrinter, MaxStepsTruncates)
{
    Module mod("m");
    QubitId q = mod.addLocal("q");
    for (int i = 0; i < 10; ++i)
        mod.addGate(GateKind::T, {q});
    LpfsScheduler lpfs;
    LeafSchedule sched = lpfs.schedule(mod, MultiSimdArch(1));

    std::ostringstream os;
    TimelinePrintOptions options;
    options.maxSteps = 3;
    printTimeline(os, sched, options);
    EXPECT_NE(os.str().find("7 more timesteps"), std::string::npos);
}

} // namespace
