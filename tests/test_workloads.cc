/**
 * @file
 * Tests for the benchmark generators: structural validity, determinism,
 * parameter scaling, and paper-anchored sanity checks (e.g. Table 1's
 * GSE qubit count, benchmark gate-count magnitudes).
 */

#include <gtest/gtest.h>

#include "support/logging.hh"

#include <set>
#include <sstream>

#include "analysis/critical_path.hh"
#include "analysis/qubit_estimator.hh"
#include "analysis/resource_estimator.hh"
#include "frontend/qasm_emitter.hh"
#include "ir/printer.hh"
#include "workloads/workloads.hh"

namespace {

using namespace msq;
using namespace msq::workloads;

class ScaledWorkloads : public ::testing::TestWithParam<const char *>
{};

TEST_P(ScaledWorkloads, BuildsAndValidates)
{
    const auto &spec = findWorkload(scaledParams(), GetParam());
    Program prog = spec.build();
    prog.validate();
    ResourceEstimator res(prog);
    EXPECT_GT(res.programGates(), 100u);
    QubitEstimator qubits(prog);
    EXPECT_GT(qubits.programQubits(), 5u);
    CriticalPathAnalysis cp(prog);
    EXPECT_LE(cp.programCriticalPath(), res.programGates());
    EXPECT_GT(cp.programCriticalPath(), 0u);
}

TEST_P(ScaledWorkloads, DeterministicBuilds)
{
    const auto &spec = findWorkload(scaledParams(), GetParam());
    Program p1 = spec.build();
    Program p2 = spec.build();
    std::ostringstream d1, d2;
    printProgram(d1, p1);
    printProgram(d2, p2);
    EXPECT_EQ(d1.str(), d2.str());
}

INSTANTIATE_TEST_SUITE_P(All, ScaledWorkloads,
                         ::testing::Values("bf", "bwt", "cn", "grovers",
                                           "gse", "sha1", "shors", "tfp"));

TEST(Workloads, RegistryComplete)
{
    EXPECT_EQ(paperParams().size(), 8u);
    EXPECT_EQ(scaledParams().size(), 8u);
    EXPECT_THROW(findWorkload(scaledParams(), "nope"), FatalError);
}

TEST(Workloads, MostlySerialCharacter)
{
    // Paper §4.2: "Many of our benchmarks are highly serial, with an
    // average critical path speedup of around 1.5x". Checks the
    // ensemble stays in a mostly-serial band.
    double total_ratio = 0;
    unsigned count = 0;
    for (const auto &spec : scaledParams()) {
        Program prog = spec.build();
        ResourceEstimator res(prog);
        CriticalPathAnalysis cp(prog);
        double ratio = static_cast<double>(res.programGates()) /
                       static_cast<double>(cp.programCriticalPath());
        EXPECT_GT(ratio, 1.0) << spec.name;
        EXPECT_LT(ratio, 10.0) << spec.name << " too parallel";
        total_ratio += ratio;
        ++count;
    }
    EXPECT_LT(total_ratio / count, 4.0);
}

TEST(Workloads, GsePaperQubitCount)
{
    // Table 1: GSE M=10 needs Q = 13 qubits.
    Program prog = buildGse(10, 20);
    QubitEstimator qubits(prog);
    EXPECT_EQ(qubits.programQubits(), 13u);
}

TEST(Workloads, GroversScalesWithN)
{
    Program small = buildGrovers(6);
    Program large = buildGrovers(12);
    EXPECT_GT(ResourceEstimator(large).programGates(),
              ResourceEstimator(small).programGates());
    EXPECT_GT(QubitEstimator(large).programQubits(),
              QubitEstimator(small).programQubits());
}

TEST(Workloads, BwtScalesWithSteps)
{
    Program short_walk = buildBwt(6, 10);
    Program long_walk = buildBwt(6, 100);
    uint64_t g_short = ResourceEstimator(short_walk).programGates();
    uint64_t g_long = ResourceEstimator(long_walk).programGates();
    // Walk gates scale ~linearly with s.
    EXPECT_GT(g_long, 5 * g_short / 2);
}

TEST(Workloads, ShorsHasManyDistinctRotations)
{
    // §5.4 / Table 2: Shor's is dominated by rotations with distinct
    // angles (QFT phases + Fourier-basis constant adds).
    Program prog = buildShors(6);
    std::set<double> angles;
    for (ModuleId id : prog.reachableModules()) {
        for (const auto &op : prog.module(id).ops())
            if (isRotationGate(op.kind))
                angles.insert(op.angle);
    }
    EXPECT_GT(angles.size(), 20u);
}

TEST(Workloads, Sha1SerialAdderStructure)
{
    Program prog = buildSha1(64, 8, 20);
    // SHA-1 is the most serial benchmark: low parallelism ratio.
    ResourceEstimator res(prog);
    CriticalPathAnalysis cp(prog);
    double ratio = static_cast<double>(res.programGates()) /
                   static_cast<double>(cp.programCriticalPath());
    EXPECT_LT(ratio, 3.0);
}

TEST(Workloads, PaperParamsEstimableWithoutUnrolling)
{
    // The paper's full-size instances (10^7..10^12+ gates) must be
    // analyzable hierarchically. Spot-check the two extremes.
    {
        Program prog = buildGrovers(40);
        uint64_t gates = ResourceEstimator(prog).programGates();
        EXPECT_GT(gates, uint64_t{100'000'000});
    }
    {
        Program prog = buildGse(10, 20);
        uint64_t gates = ResourceEstimator(prog).programGates();
        EXPECT_GT(gates, uint64_t{1'000'000});
    }
}

TEST(Workloads, InvalidParametersRejected)
{
    EXPECT_THROW(buildGrovers(1), FatalError);
    EXPECT_THROW(buildBwt(1, 0), FatalError);
    EXPECT_THROW(buildGse(0, 1), FatalError);
    EXPECT_THROW(buildTfp(2), FatalError);
    EXPECT_THROW(buildBooleanFormula(1, 1), FatalError);
    EXPECT_THROW(buildClassNumber(0), FatalError);
    EXPECT_THROW(buildSha1(64, 2, 2), FatalError);
    EXPECT_THROW(buildShors(2), FatalError);
}

TEST(Workloads, TfpHasIndependentCheckModules)
{
    // The oracle calls triple_check once per node triple (and once more
    // to uncompute): C(5,3) * 2 = 20 calls for n=5.
    Program prog = buildTfp(5);
    ModuleId oracle = prog.findModule("oracle");
    ASSERT_NE(oracle, invalidModule);
    unsigned calls = 0;
    for (const auto &op : prog.module(oracle).ops())
        if (op.isCall())
            ++calls;
    EXPECT_EQ(calls, 20u);
}

} // namespace
