/**
 * @file
 * Tests for the static makespan lower bounds (analysis/bounds.hh) and
 * the B001-B006 schedule-quality checker (verify/bound_checker.hh).
 *
 * Each bound family has a tightness witness: a hand-built DAG whose
 * optimal schedule *equals* the bound, proving the bound is exact there
 * (not merely sound). Corruption tests prove a too-short schedule trips
 * the documented B-code.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/bounds.hh"
#include "analysis/invocation_counts.hh"
#include "sched/coarse.hh"
#include "sched/leaf_cache.hh"
#include "sched/lpfs.hh"
#include "sched/rcp.hh"
#include "support/diagnostic.hh"
#include "verify/bound_checker.hh"

namespace {

using namespace msq;

/** Hand-build a schedule placing each (op, region, step) explicitly. */
class TestScheduleBuilder
{
  public:
    TestScheduleBuilder(const Module &mod, unsigned k)
        : mod(&mod), builder(mod, k)
    {}

    TestScheduleBuilder &
    step(std::vector<std::pair<unsigned, uint32_t>> placements)
    {
        builder.beginStep();
        for (auto [region, op] : placements) {
            auto &slot = builder.slot(region);
            slot.kind = mod->op(op).kind;
            slot.ops.push_back(op);
        }
        builder.endStep();
        return *this;
    }

    LeafSchedule take() { return builder.finish(); }

  private:
    const Module *mod;
    ScheduleBuilder builder;
};

bool
hasCode(const DiagnosticEngine &diags, DiagCode code)
{
    for (const Diagnostic &d : diags.diagnostics())
        if (d.code == code)
            return true;
    return false;
}

/** n serial gates on one qubit (critical path = n). */
Module
serialChain(unsigned n)
{
    Module mod("chain");
    QubitId q = mod.addLocal("q");
    for (unsigned i = 0; i < n; ++i)
        mod.addGate(i % 2 ? GateKind::T : GateKind::H, {q});
    return mod;
}

/** n independent one-qubit gates on n distinct qubits (cp = 1). */
Module
independentGates(unsigned n)
{
    Module mod("indep");
    for (unsigned i = 0; i < n; ++i) {
        QubitId q = mod.addLocal("q" + std::to_string(i));
        mod.addGate(GateKind::X, {q});
    }
    return mod;
}

/**
 * Two parallel 5-chains X,X,Toffoli,X,X; each Toffoli borrows two
 * otherwise idle qubits, pinning 6 operand touches into a one-step
 * ASAP/ALAP window. At k=1, d=3: cp = 5, resource = ceil(14/3) = 5,
 * but the interval bound sees the congested window and proves 6.
 */
Module
toffoliPinch()
{
    Module mod("pinch");
    QubitId a = mod.addLocal("a");
    QubitId p = mod.addLocal("p");
    QubitId q = mod.addLocal("q");
    QubitId b = mod.addLocal("b");
    QubitId r = mod.addLocal("r");
    QubitId s = mod.addLocal("s");
    mod.addGate(GateKind::X, {a});            // op 0
    mod.addGate(GateKind::X, {a});            // op 1
    mod.addGate(GateKind::Toffoli, {a, p, q}); // op 2
    mod.addGate(GateKind::X, {a});            // op 3
    mod.addGate(GateKind::X, {a});            // op 4
    mod.addGate(GateKind::X, {b});            // op 5
    mod.addGate(GateKind::X, {b});            // op 6
    mod.addGate(GateKind::Toffoli, {b, r, s}); // op 7
    mod.addGate(GateKind::X, {b});            // op 8
    mod.addGate(GateKind::X, {b});            // op 9
    return mod;
}

// ---------------------------------------------------------------------
// Leaf bound families, each with an exactness witness.
// ---------------------------------------------------------------------

TEST(LeafBounds, CriticalPathExactOnSerialChain)
{
    Module mod = serialChain(10);
    MakespanBounds bounds = computeLeafBounds(mod, MultiSimdArch(4));
    EXPECT_EQ(bounds.criticalPath, 10u);
    EXPECT_EQ(bounds.composite(), 10u);
    EXPECT_FALSE(bounds.saturated);

    // Both schedulers achieve the bound: the critical path is exact.
    RcpScheduler rcp;
    LpfsScheduler lpfs;
    EXPECT_EQ(rcp.schedule(mod, MultiSimdArch(4)).computeTimesteps(),
              10u);
    EXPECT_EQ(lpfs.schedule(mod, MultiSimdArch(4)).computeTimesteps(),
              10u);
}

TEST(LeafBounds, ResourceExactOnIndependentGates)
{
    Module mod = independentGates(8);

    // k=1, d=1: one operand touch per step; 8 touches need 8 steps.
    MakespanBounds narrow = computeLeafBounds(mod, MultiSimdArch(1, 1));
    EXPECT_EQ(narrow.criticalPath, 1u);
    EXPECT_EQ(narrow.resource, 8u);
    EXPECT_EQ(narrow.composite(), 8u);
    LpfsScheduler lpfs;
    EXPECT_EQ(lpfs.schedule(mod, MultiSimdArch(1, 1)).computeTimesteps(),
              8u);

    // k=2, d=2: capacity 4 per step.
    MakespanBounds wide = computeLeafBounds(mod, MultiSimdArch(2, 2));
    EXPECT_EQ(wide.resource, 2u);
    EXPECT_EQ(lpfs.schedule(mod, MultiSimdArch(2, 2)).computeTimesteps(),
              2u);
}

TEST(LeafBounds, IntervalBeatsCriticalPathAndResource)
{
    Module mod = toffoliPinch();
    MultiSimdArch arch(1, 3);
    MakespanBounds bounds = computeLeafBounds(mod, arch);
    EXPECT_EQ(bounds.criticalPath, 5u);
    EXPECT_EQ(bounds.resource, 5u); // ceil(14 touches / 3)
    EXPECT_EQ(bounds.interval, 6u); // strictly stronger
    EXPECT_EQ(bounds.composite(), 6u);

    // A valid 6-step schedule exists, so 6 is exact: the X pairs share
    // a SIMD slot (2 touches), each Toffoli takes a step alone (3).
    LeafSchedule sched = TestScheduleBuilder(mod, 1)
                             .step({{0, 0}, {0, 5}})
                             .step({{0, 1}, {0, 6}})
                             .step({{0, 2}})
                             .step({{0, 7}})
                             .step({{0, 3}, {0, 8}})
                             .step({{0, 4}, {0, 9}})
                             .take();
    EXPECT_EQ(sched.computeTimesteps(), 6u);
    DiagnosticEngine diags;
    EXPECT_TRUE(checkLeafScheduleBounds(sched, arch, diags));
    EXPECT_EQ(diags.numErrors(), 0u);
}

TEST(LeafBounds, EmptyModuleHasZeroBounds)
{
    Module mod("empty");
    mod.addLocal("q");
    MakespanBounds bounds = computeLeafBounds(mod, MultiSimdArch(4));
    EXPECT_EQ(bounds.composite(), 0u);
}

TEST(LeafBounds, NonIncreasingInWidth)
{
    Module mod = independentGates(16);
    uint64_t previous = std::numeric_limits<uint64_t>::max();
    for (unsigned k = 1; k <= 8; k *= 2) {
        uint64_t bound = computeLeafBounds(mod, MultiSimdArch(k, 2))
                             .composite();
        EXPECT_LE(bound, previous) << "width " << k;
        previous = bound;
    }
}

// ---------------------------------------------------------------------
// Hierarchical composition.
// ---------------------------------------------------------------------

/** top calls a 10-gate chain twice serially plus one tail gate. */
Program
serialProgram()
{
    Program prog;
    ModuleId chain = prog.addModule("chain");
    {
        Module &mod = prog.module(chain);
        QubitId q = mod.addParam("q");
        for (int i = 0; i < 10; ++i)
            mod.addGate(i % 2 ? GateKind::T : GateKind::H, {q});
    }
    ModuleId top = prog.addModule("top");
    {
        Module &mod = prog.module(top);
        QubitId q = mod.addLocal("q");
        mod.addCall(chain, {q});
        mod.addCall(chain, {q});
        mod.addGate(GateKind::H, {q});
    }
    prog.setEntry(top);
    return prog;
}

TEST(MakespanBoundAnalysis, SerialCompositionIsExact)
{
    Program prog = serialProgram();
    MakespanBoundAnalysis analysis(prog, MultiSimdArch(4),
                                   CommMode::None);
    // 10 + 10 + 1, all serial on one qubit; no comm costs under None.
    EXPECT_EQ(analysis.programLowerBound(), 21u);

    LpfsScheduler leaf;
    CoarseScheduler coarse(MultiSimdArch(4), leaf, CommMode::None);
    ProgramSchedule psched = coarse.schedule(prog);
    EXPECT_EQ(psched.totalCycles, 21u);

    DiagnosticEngine diags;
    ProgramGapReport report;
    EXPECT_TRUE(checkScheduleBounds(prog, psched, MultiSimdArch(4),
                                    CommMode::None, diags, &report));
    EXPECT_EQ(report.programGap, 1.0); // the composed bound is exact
}

TEST(MakespanBoundAnalysis, RepeatAlgebraMultipliesThroughCallGraph)
{
    Program prog;
    ModuleId leaf = prog.addModule("leaf");
    {
        Module &mod = prog.module(leaf);
        QubitId q = mod.addParam("q");
        for (int i = 0; i < 10; ++i)
            mod.addGate(GateKind::H, {q});
    }
    ModuleId mid = prog.addModule("mid");
    {
        Module &mod = prog.module(mid);
        QubitId q = mod.addParam("q");
        mod.addCall(leaf, {q}, 3);
    }
    ModuleId top = prog.addModule("top");
    {
        Module &mod = prog.module(top);
        QubitId q = mod.addLocal("q");
        mod.addCall(mid, {q}, 2);
    }
    prog.setEntry(top);

    // Mode None: no call overhead -> 2 * 3 * 10.
    MakespanBoundAnalysis none(prog, MultiSimdArch(2), CommMode::None);
    EXPECT_EQ(none.programLowerBound(), 60u);

    // Mode Global charges 1 cycle per call entry: 2 * (3*(10+1) + 1).
    MakespanBoundAnalysis global(prog, MultiSimdArch(2),
                                 CommMode::Global);
    EXPECT_EQ(global.programLowerBound(), 68u);
}

TEST(MakespanBoundAnalysis, WidthQueryMatchesLeafBound)
{
    Program prog = serialProgram();
    MakespanBoundAnalysis analysis(prog, MultiSimdArch(4),
                                   CommMode::None);
    ModuleId chain = 0;
    ASSERT_TRUE(prog.module(chain).isLeaf());
    for (unsigned w = 1; w <= 4; ++w) {
        MultiSimdArch sub(w);
        EXPECT_EQ(analysis.lowerBoundAt(chain, w),
                  computeLeafBounds(prog.module(chain), sub).composite());
    }
    // Non-leaf width query is non-increasing.
    ModuleId top = prog.entry();
    EXPECT_GE(analysis.lowerBoundAt(top, 1),
              analysis.lowerBoundAt(top, 4));
}

// ---------------------------------------------------------------------
// The checker on real and corrupted schedules.
// ---------------------------------------------------------------------

TEST(BoundChecker, CoarseSchedulesPassCleanWithGapReport)
{
    Program prog = serialProgram();
    MultiSimdArch arch(4);
    LpfsScheduler leaf;
    CoarseScheduler coarse(arch, leaf, CommMode::Global);
    ProgramSchedule psched = coarse.schedule(prog);

    DiagnosticEngine diags;
    ProgramGapReport report;
    BoundCheckStats stats;
    EXPECT_TRUE(checkScheduleBounds(prog, psched, arch, CommMode::Global,
                                    diags, &report, &stats));
    EXPECT_EQ(diags.numErrors(), 0u);
    EXPECT_GT(stats.dimsChecked, 0u);
    EXPECT_EQ(stats.leavesChecked, 1u);
    ASSERT_EQ(report.leaves.size(), 1u);
    EXPECT_GE(report.leaves[0].gap, 1.0);
    EXPECT_GE(report.programGap, 1.0);
    EXPECT_EQ(report.programMakespan, psched.totalCycles);
}

TEST(BoundChecker, ShortChainScheduleTripsB001)
{
    // 10 serial ops crammed into 5 steps of 2: below the critical path.
    Module mod = serialChain(10);
    TestScheduleBuilder builder(mod, 2);
    for (uint32_t s = 0; s < 5; ++s)
        builder.step({{0, 2 * s}, {1, 2 * s + 1}});
    LeafSchedule sched = builder.take();
    ASSERT_EQ(sched.computeTimesteps(), 5u);

    DiagnosticEngine diags;
    EXPECT_FALSE(checkLeafScheduleBounds(sched, MultiSimdArch(2), diags));
    EXPECT_TRUE(hasCode(diags, DiagCode::BoundBelowCriticalPath));
}

TEST(BoundChecker, OverpackedScheduleTripsB002AndB003)
{
    // 8 independent gates forced into 2 steps of 4 at capacity 1
    // (k=1, d=1): fine for the critical path (cp = 1), impossible for
    // the resource and interval bounds (both 8).
    Module mod = independentGates(8);
    LeafSchedule sched = TestScheduleBuilder(mod, 1)
                             .step({{0, 0}, {0, 1}, {0, 2}, {0, 3}})
                             .step({{0, 4}, {0, 5}, {0, 6}, {0, 7}})
                             .take();
    DiagnosticEngine diags;
    EXPECT_FALSE(
        checkLeafScheduleBounds(sched, MultiSimdArch(1, 1), diags));
    EXPECT_FALSE(hasCode(diags, DiagCode::BoundBelowCriticalPath));
    EXPECT_TRUE(hasCode(diags, DiagCode::BoundBelowResource));
    EXPECT_TRUE(hasCode(diags, DiagCode::BoundBelowInterval));
}

TEST(BoundChecker, CorruptProgramScheduleTripsB004AndB005)
{
    Program prog;
    ModuleId chain = prog.addModule("chain");
    {
        Module &mod = prog.module(chain);
        QubitId q = mod.addLocal("q");
        for (int i = 0; i < 10; ++i)
            mod.addGate(GateKind::H, {q});
    }
    prog.setEntry(chain);

    // Hand-forge a schedule claiming half the certified minimum.
    ProgramSchedule psched;
    psched.modules.resize(1);
    psched.modules[0].analyzed = true;
    psched.modules[0].leaf = true;
    psched.modules[0].dims = {{1, 5}};
    psched.totalCycles = 5;

    DiagnosticEngine diags;
    ProgramGapReport report;
    EXPECT_FALSE(checkScheduleBounds(prog, psched, MultiSimdArch(1),
                                     CommMode::None, diags, &report));
    EXPECT_TRUE(hasCode(diags, DiagCode::BoundDimBelowBound));
    EXPECT_TRUE(hasCode(diags, DiagCode::BoundProgramBelow));
    ASSERT_EQ(report.leaves.size(), 1u);
    EXPECT_LT(report.leaves[0].gap, 1.0); // the tell-tale of corruption
}

// ---------------------------------------------------------------------
// Saturating repeat algebra (B006) and gap arithmetic.
// ---------------------------------------------------------------------

/** Nested repeats whose product overflows u64: 2^40 * 2^40. */
Program
overflowProgram()
{
    Program prog;
    ModuleId leaf = prog.addModule("leaf");
    {
        Module &mod = prog.module(leaf);
        QubitId q = mod.addParam("q");
        mod.addGate(GateKind::H, {q});
    }
    ModuleId mid = prog.addModule("mid");
    {
        Module &mod = prog.module(mid);
        QubitId q = mod.addParam("q");
        Operation call =
            Operation::makeCall(leaf, {q}, uint64_t(1) << 40);
        call.line = 17;
        mod.addRawOperation(std::move(call));
    }
    ModuleId top = prog.addModule("top");
    {
        Module &mod = prog.module(top);
        QubitId q = mod.addLocal("q");
        mod.addCall(mid, {q}, uint64_t(1) << 40);
    }
    prog.setEntry(top);
    return prog;
}

TEST(RepeatOverflow, InvocationCountsSaturateWithDiagnostic)
{
    Program prog = overflowProgram();
    DiagnosticEngine diags;
    InvocationCountAnalysis counts(prog, &diags);
    EXPECT_TRUE(counts.saturated());
    EXPECT_EQ(counts.invocations(0),
              std::numeric_limits<uint64_t>::max());
    ASSERT_TRUE(hasCode(diags, DiagCode::BoundRepeatOverflow));
    // The warning points at the clipping call site, line included.
    bool located = false;
    for (const Diagnostic &d : diags.diagnostics()) {
        if (d.code != DiagCode::BoundRepeatOverflow)
            continue;
        EXPECT_EQ(d.severity, Severity::Warning);
        if (d.where.module == "mid" && d.where.line == 17)
            located = true;
    }
    EXPECT_TRUE(located);
    EXPECT_EQ(diags.numErrors(), 0u); // warning, not error
}

TEST(RepeatOverflow, BoundCompositionSaturatesSoundly)
{
    Program prog = overflowProgram();
    DiagnosticEngine diags;
    MakespanBoundAnalysis analysis(prog, MultiSimdArch(2),
                                   CommMode::Global, &diags);
    EXPECT_TRUE(analysis.saturated());
    EXPECT_TRUE(hasCode(diags, DiagCode::BoundRepeatOverflow));
    // Saturated, but still a sound (huge) lower bound.
    EXPECT_GE(analysis.programLowerBound(), uint64_t(1) << 63);
}

TEST(OptimalityGap, Arithmetic)
{
    EXPECT_EQ(optimalityGap(0, 0), 1.0);
    EXPECT_EQ(optimalityGap(10, 5), 2.0);
    EXPECT_EQ(optimalityGap(5, 5), 1.0);
    EXPECT_TRUE(std::isinf(optimalityGap(5, 0)));
}

TEST(OptimalityGap, LeafScheduleResultMatches)
{
    LeafScheduleResult result;
    result.stats.totalCycles = 12;
    result.bounds.criticalPath = 6;
    result.bounds.resource = 4;
    EXPECT_EQ(result.optimalityGap(), 2.0);
    result.stats.totalCycles = 0;
    result.bounds = MakespanBounds{};
    EXPECT_EQ(result.optimalityGap(), 1.0);
}

TEST(LeafCache, MemoizedResultCarriesBounds)
{
    // The coarse scheduler memoizes bounds with the schedule: a shared
    // cache serving a second identical run must hand back non-trivial
    // bounds without recomputation.
    Program prog = serialProgram();
    MultiSimdArch arch(2);
    LpfsScheduler leaf;
    CoarseScheduler::Options options;
    options.leafCache = std::make_shared<LeafScheduleCache>();
    CoarseScheduler coarse(arch, leaf, CommMode::Global, options);
    coarse.schedule(prog);
    EXPECT_GT(options.leafCache->size(), 0u);
    CoarseScheduler again(arch, leaf, CommMode::Global, options);
    again.schedule(prog);
    EXPECT_GT(options.leafCache->hits(), 0u);
}

} // namespace
