/**
 * @file
 * Tests for the hierarchical coarse-grained scheduler: blackbox
 * dimensions, width sweeps, parallel packing under the k constraint,
 * repeat-counted calls and call overhead accounting.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"

#include "sched/coarse.hh"
#include "sched/lpfs.hh"
#include "sched/rcp.hh"

namespace {

using namespace msq;

/** Program with two independent leaf-call streams plus a serial tail. */
Program
twoStreamProgram(uint64_t repeat = 1)
{
    Program prog;
    ModuleId chain = prog.addModule("chain");
    {
        Module &mod = prog.module(chain);
        QubitId q = mod.addParam("q");
        for (int i = 0; i < 10; ++i)
            mod.addGate(i % 2 ? GateKind::T : GateKind::H, {q});
    }
    ModuleId top = prog.addModule("top");
    {
        Module &mod = prog.module(top);
        QubitId a = mod.addLocal("a");
        QubitId b = mod.addLocal("b");
        mod.addCall(chain, {a}, repeat);
        mod.addCall(chain, {b}, repeat);
        mod.addGate(GateKind::CNOT, {a, b});
    }
    prog.setEntry(top);
    return prog;
}

TEST(ModuleScheduleInfo, BestQueries)
{
    ModuleScheduleInfo info;
    info.analyzed = true;
    info.dims = {{1, 100}, {2, 60}, {4, 60}};
    EXPECT_EQ(info.bestLength(), 60u);
    EXPECT_EQ(info.bestWidth(), 2u);
    EXPECT_EQ(info.bestWithin(1).length, 100u);
    EXPECT_EQ(info.bestWithin(3).length, 60u);
    EXPECT_EQ(info.bestWithin(3).width, 2u);
}

TEST(CoarseScheduler, DefaultWidthSweepIsPowersOfTwo)
{
    LpfsScheduler leaf;
    CoarseScheduler coarse(MultiSimdArch(8), leaf, CommMode::None);
    EXPECT_EQ(coarse.widthSweep(), (std::vector<unsigned>{1, 2, 4, 8}));
    CoarseScheduler coarse6(MultiSimdArch(6), leaf, CommMode::None);
    EXPECT_EQ(coarse6.widthSweep(), (std::vector<unsigned>{1, 2, 4, 6}));
}

TEST(CoarseScheduler, ExplicitWidthsValidated)
{
    LpfsScheduler leaf;
    CoarseScheduler::Options options;
    options.widths = {1, 5};
    EXPECT_THROW(
        CoarseScheduler(MultiSimdArch(4), leaf, CommMode::None, options),
        FatalError);
}

TEST(CoarseScheduler, IndependentCallsRunInParallel)
{
    Program prog = twoStreamProgram();
    LpfsScheduler leaf;
    CoarseScheduler coarse(MultiSimdArch(2), leaf, CommMode::None);
    ProgramSchedule sched = coarse.schedule(prog);
    // Each chain is 10 serial ops (width 1, length 10); they pack side
    // by side, then the CNOT adds 1: total 11, not 21.
    EXPECT_EQ(sched.totalCycles, 11u);
}

TEST(CoarseScheduler, WidthConstraintSerializes)
{
    Program prog = twoStreamProgram();
    LpfsScheduler leaf;
    CoarseScheduler coarse(MultiSimdArch(1), leaf, CommMode::None);
    ProgramSchedule sched = coarse.schedule(prog);
    // k = 1: the two chains serialize: 10 + 10 + 1.
    EXPECT_EQ(sched.totalCycles, 21u);
}

TEST(CoarseScheduler, RepeatCountsMultiply)
{
    Program prog = twoStreamProgram(100);
    LpfsScheduler leaf;
    CoarseScheduler coarse(MultiSimdArch(2), leaf, CommMode::None);
    ProgramSchedule sched = coarse.schedule(prog);
    EXPECT_EQ(sched.totalCycles, 100u * 10u + 1u);
}

TEST(CoarseScheduler, CallOverheadChargedWithComm)
{
    Program prog = twoStreamProgram();
    LpfsScheduler leaf;
    CoarseScheduler coarse(MultiSimdArch(2), leaf, CommMode::Global);
    ProgramSchedule sched = coarse.schedule(prog);
    // chain leaf with comm: 10 steps + masked initial fetch = 10
    // cycles; +1 call overhead each; CNOT gate costs 1+4 at coarse
    // level. Parallel streams: max(11, 11) + 5 = 16.
    EXPECT_EQ(sched.totalCycles, 16u);
}

TEST(CoarseScheduler, LeafDimsMonotone)
{
    Program prog = twoStreamProgram();
    LpfsScheduler leaf;
    CoarseScheduler coarse(MultiSimdArch(4), leaf, CommMode::None);
    ProgramSchedule sched = coarse.schedule(prog);
    const auto &info = sched.forModule(prog.findModule("chain"));
    ASSERT_TRUE(info.leaf);
    ASSERT_GE(info.dims.size(), 2u);
    for (size_t i = 1; i < info.dims.size(); ++i) {
        EXPECT_LT(info.dims[i - 1].width, info.dims[i].width);
        EXPECT_GE(info.dims[i - 1].length, info.dims[i].length);
    }
}

TEST(CoarseScheduler, FlexibleDimensionsPackWideWork)
{
    // Two "wide" leaves, each faster at width 2 but feasible at width
    // 1; with k=2 the packer should trade width for parallelism.
    Program prog;
    ModuleId wide = prog.addModule("wide");
    {
        Module &mod = prog.module(wide);
        QubitId x = mod.addParam("x");
        QubitId y = mod.addParam("y");
        // Two chains of *different* gate types so the schedule really
        // needs two regions to reach length 8.
        for (int i = 0; i < 8; ++i) {
            mod.addGate(i % 2 ? GateKind::T : GateKind::H, {x});
            mod.addGate(i % 2 ? GateKind::X : GateKind::S, {y});
        }
    }
    ModuleId top = prog.addModule("top");
    {
        Module &mod = prog.module(top);
        auto a = mod.addRegister("a", 2);
        auto b = mod.addRegister("b", 2);
        mod.addCall(wide, {a[0], a[1]});
        mod.addCall(wide, {b[0], b[1]});
    }
    prog.setEntry(top);

    LpfsScheduler leaf;
    CoarseScheduler coarse(MultiSimdArch(2), leaf, CommMode::None);
    ProgramSchedule sched = coarse.schedule(prog);
    const auto &info = sched.forModule(wide);
    // wide at width 2 = 8 steps, at width 1 = 16 steps.
    EXPECT_EQ(info.bestWithin(2).length, 8u);
    EXPECT_EQ(info.bestWithin(1).length, 16u);
    // Two instances under k=2: either serialized at width 2 (8+8=16)
    // or parallel at width 1 (16): both give 16.
    EXPECT_EQ(sched.totalCycles, 16u);
}

TEST(CoarseScheduler, NestedHierarchy)
{
    Program prog;
    ModuleId leaf = prog.addModule("leaf");
    {
        Module &mod = prog.module(leaf);
        QubitId q = mod.addParam("q");
        for (int i = 0; i < 5; ++i)
            mod.addGate(GateKind::T, {q});
    }
    ModuleId mid = prog.addModule("mid");
    {
        Module &mod = prog.module(mid);
        QubitId q = mod.addParam("q");
        mod.addCall(leaf, {q}, 3);
    }
    ModuleId top = prog.addModule("top");
    {
        Module &mod = prog.module(top);
        QubitId q = mod.addLocal("q");
        mod.addCall(mid, {q}, 2);
    }
    prog.setEntry(top);

    RcpScheduler leaf_sched;
    CoarseScheduler coarse(MultiSimdArch(2), leaf_sched, CommMode::None);
    ProgramSchedule sched = coarse.schedule(prog);
    EXPECT_EQ(sched.totalCycles, 2u * 3u * 5u);
    EXPECT_FALSE(sched.forModule(mid).leaf);
    EXPECT_TRUE(sched.forModule(leaf).leaf);
}

TEST(ProgramSchedule, UnanalyzedModulePanics)
{
    ProgramSchedule sched;
    sched.modules.resize(1);
    EXPECT_THROW(sched.forModule(0), PanicError);
}

} // namespace
