/**
 * @file
 * Tests for the Scaffold-subset frontend: lexer, parser (declarations,
 * registers, calls, repeats, rotations, diagnostics) and the QASM
 * emitters, including a printer round-trip.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"

#include <sstream>

#include "frontend/lexer.hh"
#include "frontend/parser.hh"
#include "frontend/qasm_emitter.hh"
#include "frontend/qasm_reader.hh"
#include "ir/printer.hh"

namespace {

using namespace msq;

TEST(Lexer, BasicTokens)
{
    auto tokens = tokenize("module foo(qbit q) { H(q); }");
    ASSERT_GE(tokens.size(), 12u);
    EXPECT_EQ(tokens[0].kind, TokenKind::KwModule);
    EXPECT_EQ(tokens[1].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[1].text, "foo");
    EXPECT_EQ(tokens.back().kind, TokenKind::EndOfFile);
}

TEST(Lexer, NumbersAndComments)
{
    auto tokens = tokenize("// comment\n42 3.25 1e-3 /* block\n */ 7");
    ASSERT_EQ(tokens.size(), 5u);
    EXPECT_EQ(tokens[0].kind, TokenKind::Integer);
    EXPECT_EQ(tokens[0].intValue, 42u);
    EXPECT_EQ(tokens[1].kind, TokenKind::Float);
    EXPECT_DOUBLE_EQ(tokens[1].floatValue, 3.25);
    EXPECT_EQ(tokens[2].kind, TokenKind::Float);
    EXPECT_DOUBLE_EQ(tokens[2].floatValue, 1e-3);
    EXPECT_EQ(tokens[3].intValue, 7u);
}

TEST(Lexer, TracksLineNumbers)
{
    auto tokens = tokenize("a\nb\n\nc");
    EXPECT_EQ(tokens[0].line, 1u);
    EXPECT_EQ(tokens[1].line, 2u);
    EXPECT_EQ(tokens[2].line, 4u);
}

TEST(Lexer, RejectsGarbage)
{
    EXPECT_THROW(tokenize("module $"), FatalError);
    EXPECT_THROW(tokenize("/* unterminated"), FatalError);
}

TEST(Lexer, RejectsSecondDotInNumber)
{
    EXPECT_THROW(tokenize("1.2.3"), FatalError);
    EXPECT_THROW(tokenize("Rz(q, 1.2.3);"), FatalError);
    EXPECT_THROW(tokenize(".5.2"), FatalError);
}

TEST(Lexer, RejectsDanglingExponent)
{
    EXPECT_THROW(tokenize("1e"), FatalError);
    EXPECT_THROW(tokenize("1e+"), FatalError);
    EXPECT_THROW(tokenize("1e-"), FatalError);
    EXPECT_THROW(tokenize("3.25E"), FatalError);
    EXPECT_THROW(tokenize("1e+;"), FatalError);
}

TEST(Lexer, RejectsLettersGluedToNumber)
{
    EXPECT_THROW(tokenize("123abc"), FatalError);
    EXPECT_THROW(tokenize("1.5x"), FatalError);
}

TEST(Lexer, AcceptsWellFormedNumberShapes)
{
    auto tokens = tokenize("1. .5 2e5 2E+5 1.25e-3");
    ASSERT_EQ(tokens.size(), 6u);
    EXPECT_EQ(tokens[0].kind, TokenKind::Float);
    EXPECT_DOUBLE_EQ(tokens[0].floatValue, 1.0);
    EXPECT_DOUBLE_EQ(tokens[1].floatValue, 0.5);
    EXPECT_DOUBLE_EQ(tokens[2].floatValue, 2e5);
    EXPECT_DOUBLE_EQ(tokens[3].floatValue, 2e5);
    EXPECT_DOUBLE_EQ(tokens[4].floatValue, 1.25e-3);
}

TEST(Lexer, RejectsOutOfRangeNumbers)
{
    // Shape-valid but unrepresentable literals still die through the
    // diagnosed path, not a raw std::out_of_range.
    EXPECT_THROW(tokenize("123456789012345678901234567890"), FatalError);
    EXPECT_THROW(tokenize("1e999"), FatalError);
}

TEST(Parser, SimpleModule)
{
    Program prog = parseScaffold(R"(
        module main() {
            qbit q[3];
            H(q[0]);
            CNOT(q[0], q[1]);
            Toffoli(q[0], q[1], q[2]);
        }
    )");
    const Module &mod = prog.module(prog.entry());
    EXPECT_EQ(mod.name(), "main");
    EXPECT_EQ(mod.numQubits(), 3u);
    ASSERT_EQ(mod.numOps(), 3u);
    EXPECT_EQ(mod.op(2).kind, GateKind::Toffoli);
}

TEST(Parser, ModuleCallsAndRepeat)
{
    Program prog = parseScaffold(R"(
        module sub(qbit a, qbit b) {
            CNOT(a, b);
        }
        module main() {
            qbit x;
            qbit y;
            repeat 12 sub(x, y);
        }
    )");
    const Module &mod = prog.module(prog.entry());
    ASSERT_EQ(mod.numOps(), 1u);
    EXPECT_TRUE(mod.op(0).isCall());
    EXPECT_EQ(mod.op(0).repeat, 12u);
}

TEST(Parser, ForwardCallsAllowed)
{
    Program prog = parseScaffold(R"(
        module main() {
            qbit x;
            later(x);
        }
        module later(qbit q) {
            H(q);
        }
    )");
    EXPECT_EQ(prog.numModules(), 2u);
    EXPECT_EQ(prog.module(prog.entry()).name(), "main");
}

TEST(Parser, RegisterExpansionInArgs)
{
    Program prog = parseScaffold(R"(
        module sub(qbit r[3]) {
            H(r[0]);
        }
        module main() {
            qbit q[3];
            sub(q);
        }
    )");
    const Module &mod = prog.module(prog.entry());
    EXPECT_EQ(mod.op(0).operands.size(), 3u);
}

TEST(Parser, RotationAngles)
{
    Program prog = parseScaffold(R"(
        module main() {
            qbit q;
            Rz(q, 0.5);
            Rx(q, -1.25);
        }
    )");
    const Module &mod = prog.module(prog.entry());
    EXPECT_DOUBLE_EQ(mod.op(0).angle, 0.5);
    EXPECT_DOUBLE_EQ(mod.op(1).angle, -1.25);
}

TEST(Parser, EntryFallsBackToLastModule)
{
    Program prog = parseScaffold(R"(
        module first(qbit q) { H(q); }
        module runner() { qbit q; first(q); }
    )");
    EXPECT_EQ(prog.module(prog.entry()).name(), "runner");
}

TEST(Parser, Diagnostics)
{
    EXPECT_THROW(parseScaffold("module main() { H(q); }"), FatalError);
    EXPECT_THROW(parseScaffold("module main() { qbit q; Rz(q); }"),
                 FatalError);
    EXPECT_THROW(parseScaffold("module main() { qbit q; H(q, 0.5); }"),
                 FatalError);
    EXPECT_THROW(parseScaffold("module main() { qbit q; nope(q); }"),
                 FatalError);
    EXPECT_THROW(parseScaffold("module main() { qbit q[2]; H(q[5]); }"),
                 FatalError);
    EXPECT_THROW(parseScaffold("module m(qbit q) { H(q); } module m() {}"),
                 FatalError);
    EXPECT_THROW(parseScaffold(""), FatalError);
    EXPECT_THROW(parseScaffold("module main() { qbit q; repeat 0 H(q); }"),
                 FatalError);
}

TEST(Parser, RepeatedGateUnrolls)
{
    Program prog = parseScaffold(R"(
        module main() {
            qbit q;
            repeat 4 T(q);
        }
    )");
    EXPECT_EQ(prog.module(prog.entry()).numOps(), 4u);
}

TEST(Parser, PrinterRoundTrip)
{
    const char *source = R"(
        module sub(qbit a, qbit b) {
            qbit anc;
            CNOT(a, anc);
            Rz(anc, 0.125);
            CNOT(b, anc);
        }
        module main() {
            qbit q[2];
            H(q[0]);
            repeat 7 sub(q[0], q[1]);
            MeasZ(q[0]);
        }
    )";
    Program prog = parseScaffold(source);
    std::ostringstream dumped;
    printProgram(dumped, prog);
    Program reparsed = parseScaffold(dumped.str());
    std::ostringstream dumped2;
    printProgram(dumped2, reparsed);
    EXPECT_EQ(dumped.str(), dumped2.str());
}

TEST(QasmEmitter, HierarchicalForm)
{
    Program prog = parseScaffold(R"(
        module sub(qbit a) { T(a); }
        module main() { qbit q; repeat 3 sub(q); H(q); }
    )");
    std::ostringstream os;
    emitHierarchicalQasm(os, prog);
    std::string text = os.str();
    EXPECT_NE(text.find(".module sub a"), std::string::npos);
    EXPECT_NE(text.find("call[x3] sub q"), std::string::npos);
    EXPECT_NE(text.find("H q"), std::string::npos);
}

TEST(QasmEmitter, FlatFormUnrollsCalls)
{
    Program prog = parseScaffold(R"(
        module sub(qbit a) { qbit anc; CNOT(a, anc); }
        module main() { qbit q; sub(q); sub(q); sub(q); }
    )");
    std::ostringstream os;
    uint64_t emitted = emitFlatQasm(os, prog);
    EXPECT_EQ(emitted, 3u);
    std::string text = os.str();
    // Each call site declares a fresh ancilla.
    EXPECT_NE(text.find("anc0"), std::string::npos);
    EXPECT_NE(text.find("anc2"), std::string::npos);
}

TEST(QasmEmitter, FlatFormEnforcesBudget)
{
    Program prog = parseScaffold(R"(
        module sub(qbit a) { T(a); T(a); T(a); }
        module main() { qbit q; repeat 100 sub(q); }
    )");
    std::ostringstream os;
    QasmEmitOptions options;
    options.maxGates = 10;
    EXPECT_THROW(emitFlatQasm(os, prog, options), FatalError);
}

TEST(QasmEmitter, FlatRotationSyntax)
{
    Program prog = parseScaffold(R"(
        module main() { qbit q; Rz(q, 0.5); }
    )");
    std::ostringstream os;
    emitFlatQasm(os, prog);
    EXPECT_NE(os.str().find("Rz(0.5) q"), std::string::npos);
}

TEST(QasmReader, RoundTripsEmitterOutput)
{
    Program prog = parseScaffold(R"(
        module sub(qbit a, qbit b) {
            qbit anc;
            CNOT(a, anc);
            Rz(anc, 0.125);
            Toffoli(a, b, anc);
        }
        module main() {
            qbit q[3];
            H(q[0]);
            repeat 9 sub(q[0], q[1]);
            sub(q[1], q[2]);
            MeasZ(q[2]);
        }
    )");
    std::ostringstream first;
    emitHierarchicalQasm(first, prog);

    Program reloaded = parseHierarchicalQasm(first.str());
    std::ostringstream second;
    emitHierarchicalQasm(second, reloaded);
    EXPECT_EQ(first.str(), second.str());

    // Structure survives: same module count, entry, op counts.
    EXPECT_EQ(reloaded.numModules(), prog.numModules());
    EXPECT_EQ(reloaded.module(reloaded.entry()).numOps(),
              prog.module(prog.entry()).numOps());
}

TEST(QasmReader, ParsesRepeatAndAngle)
{
    Program prog = parseHierarchicalQasm(R"(.module sub q
    T q
.end

.module main
    qbit x
    Rz(0.5) x
    call[x7] sub x
.end
)");
    const Module &mod = prog.module(prog.entry());
    ASSERT_EQ(mod.numOps(), 2u);
    EXPECT_DOUBLE_EQ(mod.op(0).angle, 0.5);
    EXPECT_TRUE(mod.op(1).isCall());
    EXPECT_EQ(mod.op(1).repeat, 7u);
}

/** The FatalError message carries the offending line number. */
template <typename Fn>
std::string
fatalMessage(Fn &&fn)
{
    try {
        fn();
    } catch (const FatalError &err) {
        return err.what();
    }
    ADD_FAILURE() << "expected a FatalError";
    return "";
}

TEST(QasmReader, RejectsMalformedCallRepeat)
{
    // Non-numeric, empty, and overflowing repeat counts must all be
    // line-numbered diagnostics, never raw std::stoull exceptions.
    EXPECT_THROW(parseHierarchicalQasm(
                     ".module m q\n    call[xFOO] m q\n.end\n"),
                 FatalError);
    EXPECT_THROW(parseHierarchicalQasm(
                     ".module m q\n    call[x] m q\n.end\n"),
                 FatalError);
    EXPECT_THROW(parseHierarchicalQasm(
                     ".module m q\n"
                     "    call[x123456789012345678901234567890] m q\n"
                     ".end\n"),
                 FatalError);
    EXPECT_THROW(parseHierarchicalQasm(
                     ".module m q\n    call[x-3] m q\n.end\n"),
                 FatalError);
    std::string msg = fatalMessage([] {
        parseHierarchicalQasm(".module m q\n    call[xFOO] m q\n.end\n");
    });
    EXPECT_NE(msg.find("qasm line 2"), std::string::npos) << msg;
}

TEST(QasmReader, AcceptsLargeButRepresentableRepeat)
{
    Program prog = parseHierarchicalQasm(R"(.module sub q
    T q
.end
.module main
    qbit x
    call[x18446744073709551615] sub x
.end
)");
    const Module &mod = prog.module(prog.entry());
    ASSERT_EQ(mod.numOps(), 1u);
    EXPECT_EQ(mod.op(0).repeat, UINT64_MAX);
}

TEST(QasmReader, RejectsMalformedAngle)
{
    // Empty, non-numeric, trailing-garbage, and overflowing angles.
    EXPECT_THROW(parseHierarchicalQasm(
                     ".module m\n    qbit q\n    Rz() q\n.end\n"),
                 FatalError);
    EXPECT_THROW(parseHierarchicalQasm(
                     ".module m\n    qbit q\n    Rz(abc) q\n.end\n"),
                 FatalError);
    EXPECT_THROW(parseHierarchicalQasm(
                     ".module m\n    qbit q\n    Rz(1.5x) q\n.end\n"),
                 FatalError);
    EXPECT_THROW(parseHierarchicalQasm(
                     ".module m\n    qbit q\n    Rz(1e999) q\n.end\n"),
                 FatalError);
    std::string msg = fatalMessage([] {
        parseHierarchicalQasm(
            ".module m\n    qbit q\n    Rz(abc) q\n.end\n");
    });
    EXPECT_NE(msg.find("qasm line 3"), std::string::npos) << msg;
}

TEST(QasmReader, Diagnostics)
{
    EXPECT_THROW(parseHierarchicalQasm(""), FatalError);
    EXPECT_THROW(parseHierarchicalQasm(".module m\n    H q\n.end\n"),
                 FatalError); // unknown qubit
    EXPECT_THROW(parseHierarchicalQasm(".module m\n    qbit q\n"),
                 FatalError); // unterminated block
    EXPECT_THROW(
        parseHierarchicalQasm(".module m\n    qbit q\n    NOPE q\n.end\n"),
        FatalError); // unknown gate
    EXPECT_THROW(
        parseHierarchicalQasm(".module m\n    qbit q\n    call other q\n.end\n"),
        FatalError); // unknown callee
}

} // namespace
