/**
 * @file
 * Tests for the communication analyzer: movement derivation, latency
 * masking, eviction policy, local-memory scheduling and capacity limits.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"

#include "sched/comm.hh"
#include "sched/lpfs.hh"
#include "sched/rcp.hh"
#include "sched/validator.hh"

namespace {

using namespace msq;

/** Hand-build a schedule placing each (op, region, step) explicitly. */
class TestScheduleBuilder
{
  public:
    TestScheduleBuilder(const Module &mod, unsigned k)
        : mod(&mod), builder(mod, k)
    {}

    TestScheduleBuilder &
    step(std::vector<std::pair<unsigned, uint32_t>> placements)
    {
        builder.beginStep();
        for (auto [region, op] : placements) {
            auto &slot = builder.slot(region);
            slot.kind = mod->op(op).kind;
            slot.ops.push_back(op);
        }
        builder.endStep();
        return *this;
    }

    LeafSchedule take() { return builder.finish(); }

  private:
    const Module *mod;
    ScheduleBuilder builder;
};

TEST(Comm, NoneModeLeavesScheduleAlone)
{
    Module mod("m");
    QubitId q = mod.addLocal("q");
    mod.addGate(GateKind::H, {q});
    LeafSchedule sched = TestScheduleBuilder(mod, 1).step({{0, 0}}).take();
    CommunicationAnalyzer comm(MultiSimdArch(1), CommMode::None);
    CommStats stats = comm.annotate(sched);
    EXPECT_EQ(stats.teleportMoves, 0u);
    EXPECT_EQ(stats.totalCycles, 1u);
}

TEST(Comm, FirstTouchIsMaskedTeleport)
{
    // A fresh qubit's fetch from memory is pipelined ahead: no blocking.
    Module mod("m");
    QubitId q = mod.addLocal("q");
    mod.addGate(GateKind::H, {q});
    LeafSchedule sched = TestScheduleBuilder(mod, 1).step({{0, 0}}).take();
    CommunicationAnalyzer comm(MultiSimdArch(1), CommMode::Global);
    CommStats stats = comm.annotate(sched);
    EXPECT_EQ(stats.teleportMoves, 1u);
    EXPECT_EQ(stats.blockingTeleports, 0u);
    EXPECT_EQ(stats.totalCycles, 1u);
    validateLeafSchedule(sched, MultiSimdArch(1), true);
}

TEST(Comm, PinnedChainHasNoFurtherMoves)
{
    Module mod("m");
    QubitId q = mod.addLocal("q");
    for (int i = 0; i < 10; ++i)
        mod.addGate(GateKind::T, {q});
    TestScheduleBuilder builder(mod, 1);
    for (uint32_t i = 0; i < 10; ++i)
        builder.step({{0, i}});
    LeafSchedule sched = builder.take();
    CommunicationAnalyzer comm(MultiSimdArch(1), CommMode::Global);
    CommStats stats = comm.annotate(sched);
    EXPECT_EQ(stats.teleportMoves, 1u); // the initial fetch only
    EXPECT_EQ(stats.totalCycles, 10u);
    validateLeafSchedule(sched, MultiSimdArch(1), true);
}

TEST(Comm, TightCrossRegionMoveBlocks)
{
    // q used in region 0 at step 0 and in region 1 at step 1: the
    // teleport cannot be masked.
    Module mod("m");
    QubitId a = mod.addLocal("a");
    QubitId b = mod.addLocal("b");
    mod.addGate(GateKind::H, {a});
    mod.addGate(GateKind::CNOT, {a, b});
    LeafSchedule sched =
        TestScheduleBuilder(mod, 2).step({{0, 0}}).step({{1, 1}}).take();
    CommunicationAnalyzer comm(MultiSimdArch(2), CommMode::Global);
    CommStats stats = comm.annotate(sched);
    EXPECT_EQ(stats.blockingTeleports, 1u);
    // cycles: step0 = 1, step1 = 1 + 4.
    EXPECT_EQ(stats.totalCycles, 6u);
    validateLeafSchedule(sched, MultiSimdArch(2), true);
}

TEST(Comm, DistantCrossRegionMoveIsMasked)
{
    // Same cross-region move, but with >= 4 idle steps between uses.
    Module mod("m");
    QubitId a = mod.addLocal("a");
    QubitId b = mod.addLocal("b");
    QubitId z = mod.addLocal("z");
    mod.addGate(GateKind::H, {a});        // op0: step 0, region 0
    for (int i = 0; i < 5; ++i)
        mod.addGate(GateKind::T, {z});    // ops 1..5 filler
    mod.addGate(GateKind::CNOT, {a, b});  // op6: step 5, region 1
    TestScheduleBuilder builder(mod, 2);
    builder.step({{0, 0}, {1, 1}});
    for (uint32_t i = 2; i <= 5; ++i)
        builder.step({{1, i}});
    builder.step({{0, 6}});
    LeafSchedule sched = builder.take();
    CommunicationAnalyzer comm(MultiSimdArch(2), CommMode::Global);
    CommStats stats = comm.annotate(sched);
    // a's move into region 0's CNOT is... a stays in region 0 (idle
    // region) - actually region 0 is idle steps 1-4, so a never moves.
    // b is fetched fresh (masked). z pinned in region 1.
    EXPECT_EQ(stats.blockingTeleports, 0u);
    EXPECT_EQ(stats.totalCycles, 6u);
    validateLeafSchedule(sched, MultiSimdArch(2), true);
}

TEST(Comm, EvictionFromActiveRegion)
{
    // q0 used at step 0; region 0 stays active with q1 at step 1; q0
    // must be evicted. Its next use is far away -> masked eviction.
    Module mod("m");
    QubitId q0 = mod.addLocal("q0");
    QubitId q1 = mod.addLocal("q1");
    mod.addGate(GateKind::H, {q0});  // op0
    for (int i = 0; i < 6; ++i)
        mod.addGate(GateKind::T, {q1}); // ops1..6
    mod.addGate(GateKind::H, {q0});  // op7
    TestScheduleBuilder builder(mod, 1);
    builder.step({{0, 0}});
    for (uint32_t i = 1; i <= 6; ++i)
        builder.step({{0, i}});
    builder.step({{0, 7}});
    LeafSchedule sched = builder.take();
    CommunicationAnalyzer comm(MultiSimdArch(1), CommMode::Global);
    CommStats stats = comm.annotate(sched);
    // Moves: fetch q0 (masked), fetch q1 (masked), evict q0 (masked,
    // next use 7 steps away), re-fetch q0 (masked: idle since evict at
    // step 1, used step 7), and the final eviction of q1 at step 7
    // (masked, never used again).
    EXPECT_EQ(stats.teleportMoves, 5u);
    EXPECT_EQ(stats.blockingTeleports, 0u);
    EXPECT_EQ(stats.totalCycles, 8u);
    validateLeafSchedule(sched, MultiSimdArch(1), true);
}

/** The "moved aside temporarily" pattern of §4.4: q0 sits out exactly
 * one active timestep and returns to the same region. */
LeafSchedule
tightReuseSchedule(Module &mod)
{
    QubitId q0 = mod.addLocal("q0");
    QubitId q1 = mod.addLocal("q1");
    mod.addGate(GateKind::H, {q0});  // op0 step0
    mod.addGate(GateKind::T, {q1});  // op1 step1 (q0 idle, evicted)
    mod.addGate(GateKind::H, {q0});  // op2 step2 (q0 returns)
    return TestScheduleBuilder(mod, 1)
        .step({{0, 0}})
        .step({{0, 1}})
        .step({{0, 2}})
        .take();
}

TEST(Comm, TightReuseWithoutLocalMemoryPaysTeleports)
{
    Module mod("m");
    LeafSchedule sched = tightReuseSchedule(mod);
    CommunicationAnalyzer comm(MultiSimdArch(1), CommMode::Global);
    CommStats stats = comm.annotate(sched);
    EXPECT_EQ(stats.blockingTeleports, 2u); // tight evict + tight fetch
    // cycles: 1 + (1+4) + (1+4)
    EXPECT_EQ(stats.totalCycles, 11u);
    validateLeafSchedule(sched, MultiSimdArch(1), true);
}

TEST(Comm, TightReuseWithLocalMemoryUsesBallisticMoves)
{
    Module mod("m");
    LeafSchedule sched = tightReuseSchedule(mod);
    MultiSimdArch arch(1, unbounded, 4);
    CommunicationAnalyzer comm(arch, CommMode::GlobalWithLocalMem);
    CommStats stats = comm.annotate(sched);
    EXPECT_EQ(stats.localMoves, 2u); // aside + back
    EXPECT_EQ(stats.blockingTeleports, 0u);
    // cycles: 1 + (1+1) + (1+1); the initial fetch is masked.
    EXPECT_EQ(stats.totalCycles, 5u);
    validateLeafSchedule(sched, arch, true);
}

TEST(Comm, LocalMemoryCapacityRespected)
{
    // Two qubits need to sit out the same step, capacity 1: one goes to
    // the scratchpad, the other teleports to global.
    Module mod("m");
    QubitId q0 = mod.addLocal("q0");
    QubitId q1 = mod.addLocal("q1");
    QubitId q2 = mod.addLocal("q2");
    mod.addGate(GateKind::H, {q0});               // op0
    mod.addGate(GateKind::H, {q1});               // op0' same step
    mod.addGate(GateKind::T, {q2});               // op2: q0,q1 sit out
    mod.addGate(GateKind::CNOT, {q0, q1});        // op3: both return
    LeafSchedule sched = TestScheduleBuilder(mod, 1)
                             .step({{0, 0}})
                             .step({{0, 1}})
                             .step({{0, 2}})
                             .step({{0, 3}})
                             .take();
    // note: ops 0 and 1 are both H on different qubits; schedule them
    // in separate steps for simplicity of the expected counts.
    MultiSimdArch arch(1, unbounded, 1);
    CommunicationAnalyzer comm(arch, CommMode::GlobalWithLocalMem);
    CommStats stats = comm.annotate(sched);
    EXPECT_EQ(stats.localMoves, 2u);       // one qubit aside + back
    EXPECT_GE(stats.blockingTeleports, 1u); // the other thrashes global
    validateLeafSchedule(sched, arch, true);
}

TEST(Comm, AnnotateIsIdempotent)
{
    Module mod("m");
    LeafSchedule sched = tightReuseSchedule(mod);
    CommunicationAnalyzer comm(MultiSimdArch(1), CommMode::Global);
    CommStats first = comm.annotate(sched);
    CommStats second = comm.annotate(sched);
    EXPECT_EQ(first.teleportMoves, second.teleportMoves);
    EXPECT_EQ(first.totalCycles, second.totalCycles);
}

TEST(Comm, SchedulerOutputsStayConsistent)
{
    // Integration: RCP and LPFS schedules annotate into move-consistent
    // schedules on a nontrivial module.
    Module mod("m");
    auto reg = mod.addRegister("q", 6);
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 6; ++i)
            mod.addGate(GateKind::T, {reg[i]});
        for (int i = 0; i + 1 < 6; i += 2)
            mod.addGate(GateKind::CNOT, {reg[i], reg[i + 1]});
    }
    for (auto mode : {CommMode::Global, CommMode::GlobalWithLocalMem}) {
        MultiSimdArch arch(3, unbounded, 8);
        RcpScheduler rcp;
        LeafSchedule rs = rcp.schedule(mod, arch);
        CommunicationAnalyzer comm(arch, mode);
        comm.annotate(rs);
        validateLeafSchedule(rs, arch, true);

        LpfsScheduler lpfs;
        LeafSchedule ls = lpfs.schedule(mod, arch);
        comm.annotate(ls);
        validateLeafSchedule(ls, arch, true);
    }
}

} // namespace
