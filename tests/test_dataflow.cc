/**
 * @file
 * Tests for the dataflow framework (QubitSet, the forward/backward
 * engine, acyclicBottomUpOrder) and its interprocedural client
 * analyses: qubit liveness, measurement dominance, and
 * entanglement-group tracking.
 */

#include <gtest/gtest.h>

#include "analysis/dataflow.hh"
#include "analysis/qubit_analyses.hh"
#include "core/toolflow.hh"
#include "frontend/parser.hh"
#include "ir/dag.hh"
#include "workloads/workloads.hh"

namespace {

using namespace msq;

// --- QubitSet ---

TEST(QubitSet, BasicSetOperations)
{
    QubitSet set(70); // spans two words
    EXPECT_EQ(set.size(), 70u);
    EXPECT_TRUE(set.empty());
    set.set(0);
    set.set(69);
    EXPECT_TRUE(set.test(0));
    EXPECT_TRUE(set.test(69));
    EXPECT_FALSE(set.test(1));
    EXPECT_EQ(set.count(), 2u);
    set.reset(0);
    EXPECT_FALSE(set.test(0));
    EXPECT_EQ(set.count(), 1u);

    // Out-of-range accesses are ignored, not UB.
    set.set(100);
    EXPECT_FALSE(set.test(100));
    EXPECT_EQ(set.count(), 1u);
}

TEST(QubitSet, UniteAndIntersectReportChanges)
{
    QubitSet a(10), b(10);
    a.set(1);
    b.set(2);
    EXPECT_TRUE(a.uniteWith(b));
    EXPECT_FALSE(a.uniteWith(b)); // already a superset
    EXPECT_TRUE(a.test(1));
    EXPECT_TRUE(a.test(2));

    QubitSet c(10);
    c.set(2);
    EXPECT_TRUE(a.intersectWith(c));
    EXPECT_FALSE(a.test(1));
    EXPECT_TRUE(a.test(2));
    EXPECT_FALSE(a.intersectWith(c));
    EXPECT_EQ(a, c);
}

// --- the engine ---

/** Forward may-touched: every operand joins the set. */
class TouchedProblem : public DataflowProblem
{
  public:
    DataflowDirection direction() const override
    {
        return DataflowDirection::Forward;
    }

    void
    transfer(const Module &mod, uint32_t op_index,
             QubitSet &state) const override
    {
        for (QubitId q : mod.op(op_index).operands)
            state.set(q);
    }
};

TEST(DataflowEngine, ForwardStatesFollowDependences)
{
    Module mod("m");
    QubitId a = mod.addLocal("a");
    QubitId b = mod.addLocal("b");
    QubitId c = mod.addLocal("c");
    mod.addGate(GateKind::H, {a});       // op0
    mod.addGate(GateKind::H, {b});       // op1 (parallel to op0)
    mod.addGate(GateKind::CNOT, {a, b}); // op2 joins both
    mod.addGate(GateKind::H, {c});       // op3 independent

    DepDag dag = DepDag::build(mod);
    DataflowResult result = solveDataflow(mod, dag, TouchedProblem());

    // op2's in-state is the union of both parallel branches.
    EXPECT_TRUE(result.before[2].test(a));
    EXPECT_TRUE(result.before[2].test(b));
    EXPECT_FALSE(result.before[2].test(c));
    EXPECT_TRUE(result.after[2].test(a));
    // op3 is a root: empty boundary in-state.
    EXPECT_TRUE(result.before[3].empty());
    EXPECT_TRUE(result.after[3].test(c));
}

// --- acyclicBottomUpOrder ---

TEST(BottomUpOrder, CalleesComeFirstEntryLast)
{
    Program prog;
    ModuleId inner = prog.addModule("inner");
    ModuleId outer = prog.addModule("outer");
    ModuleId main = prog.addModule("main");
    ModuleId unreachable = prog.addModule("unreachable");
    prog.module(inner).addParam("p");
    prog.module(inner).addGate(GateKind::H, {0});
    prog.module(outer).addParam("p");
    prog.module(outer).addCall(inner, {0});
    prog.module(main).addLocal("q");
    prog.module(main).addCall(outer, {0});
    prog.module(unreachable).addLocal("q");
    prog.setEntry(main);

    bool cyclic = true;
    std::vector<ModuleId> order = acyclicBottomUpOrder(prog, &cyclic);
    EXPECT_FALSE(cyclic);
    ASSERT_EQ(order.size(), 3u); // unreachable omitted
    EXPECT_EQ(order.back(), main);
    // inner strictly before outer.
    size_t inner_pos = 0, outer_pos = 0;
    for (size_t i = 0; i < order.size(); ++i) {
        if (order[i] == inner)
            inner_pos = i;
        if (order[i] == outer)
            outer_pos = i;
    }
    EXPECT_LT(inner_pos, outer_pos);
}

TEST(BottomUpOrder, DetectsRecursionWithoutPanicking)
{
    Program prog;
    ModuleId a = prog.addModule("a");
    ModuleId b = prog.addModule("b");
    prog.module(a).addParam("p");
    prog.module(b).addParam("p");
    // Mutual recursion, built through the unchecked path.
    prog.module(a).addRawOperation(Operation::makeCall(b, {0}));
    prog.module(b).addRawOperation(Operation::makeCall(a, {0}));
    prog.setEntry(a);

    bool cyclic = false;
    std::vector<ModuleId> order = acyclicBottomUpOrder(prog, &cyclic);
    EXPECT_TRUE(cyclic);
    EXPECT_TRUE(order.empty()); // both modules sit on the cycle

    LivenessAnalysis liveness = LivenessAnalysis::analyze(prog);
    EXPECT_FALSE(liveness.valid());
    EXPECT_TRUE(liveness.cyclic());
    MeasurementDominance dom = MeasurementDominance::analyze(prog);
    EXPECT_FALSE(dom.valid());
}

TEST(BottomUpOrder, EmptyWithoutEntry)
{
    Program prog;
    prog.addModule("m");
    bool cyclic = true;
    EXPECT_TRUE(acyclicBottomUpOrder(prog, &cyclic).empty());
    EXPECT_FALSE(cyclic);
}

// --- liveness ---

TEST(Liveness, LiveRangesAndPrepKills)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    QubitId a = mod.addLocal("a");
    QubitId b = mod.addLocal("b");
    mod.addGate(GateKind::PrepZ, {a});   // op0
    mod.addGate(GateKind::H, {a});       // op1
    mod.addGate(GateKind::CNOT, {a, b}); // op2
    mod.addGate(GateKind::MeasZ, {b});   // op3
    prog.setEntry(id);

    LivenessAnalysis liveness = LivenessAnalysis::analyze(prog);
    ASSERT_TRUE(liveness.valid());
    const ModuleLiveness &ml = liveness.module(id);
    EXPECT_TRUE(ml.ranges[a].used);
    EXPECT_EQ(ml.ranges[a].firstUse, 0u);
    EXPECT_EQ(ml.ranges[a].lastUse, 2u);
    EXPECT_EQ(ml.ranges[b].lastUse, 3u);

    // Before op0 nothing is live: the prep kills a's incoming value.
    EXPECT_FALSE(ml.liveIn[0].test(a));
    // Between prep and CNOT, a is live.
    EXPECT_TRUE(ml.liveIn[1].test(a));
    EXPECT_TRUE(ml.liveIn[2].test(a));
}

TEST(Liveness, CallArgumentDeadWhenCalleeIgnoresParam)
{
    Program prog;
    ModuleId callee = prog.addModule("callee");
    Module &cal = prog.module(callee);
    QubitId used = cal.addParam("used");
    QubitId ignored = cal.addParam("ignored");
    cal.addGate(GateKind::H, {used});

    ModuleId main = prog.addModule("main");
    Module &m = prog.module(main);
    QubitId x = m.addLocal("x");
    QubitId y = m.addLocal("y");
    m.addCall(callee, {x, y});
    prog.setEntry(main);

    LivenessAnalysis liveness = LivenessAnalysis::analyze(prog);
    ASSERT_TRUE(liveness.valid());
    EXPECT_TRUE(liveness.module(callee).paramUsed[used]);
    EXPECT_FALSE(liveness.module(callee).paramUsed[ignored]);

    const ModuleLiveness &ml = liveness.module(main);
    EXPECT_TRUE(ml.ranges[x].used);      // reaches a real gate
    EXPECT_FALSE(ml.ranges[y].used);     // threaded but never touched
    EXPECT_TRUE(ml.locallyReferenced[y]); // still appears at the call
    // Only the used argument is live into the call.
    EXPECT_TRUE(ml.liveIn[0].test(x));
    EXPECT_FALSE(ml.liveIn[0].test(y));
}

TEST(Liveness, UnusedArgumentThreadsThroughCallChain)
{
    // main -> outer -> inner; inner ignores its second parameter, so
    // the deadness propagates up two call levels.
    Program prog;
    ModuleId inner = prog.addModule("inner");
    prog.module(inner).addParam("p");
    prog.module(inner).addParam("dead");
    prog.module(inner).addGate(GateKind::T, {0});
    ModuleId outer = prog.addModule("outer");
    prog.module(outer).addParam("p");
    prog.module(outer).addParam("dead");
    prog.module(outer).addCall(inner, {0, 1});
    ModuleId main = prog.addModule("main");
    prog.module(main).addLocal("q");
    prog.module(main).addLocal("r");
    prog.module(main).addCall(outer, {0, 1});
    prog.setEntry(main);

    LivenessAnalysis liveness = LivenessAnalysis::analyze(prog);
    ASSERT_TRUE(liveness.valid());
    EXPECT_FALSE(liveness.module(outer).paramUsed[1]);
    EXPECT_FALSE(liveness.module(main).ranges[1].used);
    EXPECT_TRUE(liveness.module(main).ranges[0].used);
}

// --- measurement dominance ---

TEST(MeasurementDominance, CleanProgramHasNoViolations)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    QubitId q = mod.addLocal("q");
    mod.addGate(GateKind::PrepZ, {q});
    mod.addGate(GateKind::H, {q});
    mod.addGate(GateKind::MeasZ, {q});
    mod.addGate(GateKind::PrepZ, {q}); // re-prepare
    mod.addGate(GateKind::H, {q});     // fine again
    prog.setEntry(id);

    MeasurementDominance dom = MeasurementDominance::analyze(prog);
    ASSERT_TRUE(dom.valid());
    EXPECT_TRUE(dom.clean());
}

TEST(MeasurementDominance, CalleeMeasurementReachesCallerUse)
{
    // The callee leaves its parameter measured; the caller then gates
    // it. Verifier V009 cannot see this (it resets state at calls).
    Program prog;
    ModuleId callee = prog.addModule("measure_it");
    Module &cal = prog.module(callee);
    cal.addParam("p");
    cal.addGate(GateKind::MeasZ, {0});

    ModuleId main = prog.addModule("main");
    Module &m = prog.module(main);
    QubitId q = m.addLocal("q");
    m.addGate(GateKind::PrepZ, {q});
    m.addCall(callee, {q}); // op1
    m.addGate(GateKind::H, {q}); // op2: use of measured qubit
    prog.setEntry(main);

    MeasurementDominance dom = MeasurementDominance::analyze(prog);
    ASSERT_TRUE(dom.valid());
    ASSERT_EQ(dom.violations().size(), 1u);
    const MeasurementViolation &v = dom.violations()[0];
    EXPECT_EQ(v.module, main);
    EXPECT_EQ(v.opIndex, 2u);
    EXPECT_EQ(v.qubit, q);
    EXPECT_TRUE(v.interprocedural);

    EXPECT_EQ(dom.summary(callee).end[0],
              MeasurementDominance::EndState::Measured);
}

TEST(MeasurementDominance, MeasuredArgumentIntoSensitiveCallee)
{
    // The caller measures, then hands the qubit to a callee that gates
    // it before re-preparing: flagged at the call site.
    Program prog;
    ModuleId callee = prog.addModule("uses_it");
    Module &cal = prog.module(callee);
    cal.addParam("p");
    cal.addGate(GateKind::H, {0});

    ModuleId main = prog.addModule("main");
    Module &m = prog.module(main);
    QubitId q = m.addLocal("q");
    m.addGate(GateKind::MeasZ, {q}); // op0
    m.addCall(callee, {q});          // op1: violation here
    prog.setEntry(main);

    MeasurementDominance dom = MeasurementDominance::analyze(prog);
    ASSERT_TRUE(dom.valid());
    ASSERT_EQ(dom.violations().size(), 1u);
    EXPECT_EQ(dom.violations()[0].opIndex, 1u);
    EXPECT_TRUE(dom.violations()[0].interprocedural);
    EXPECT_TRUE(dom.summary(callee).useBeforePrep[0]);
}

TEST(MeasurementDominance, PreparingCalleeIsCleanAtCallSite)
{
    Program prog;
    ModuleId callee = prog.addModule("preps_it");
    Module &cal = prog.module(callee);
    cal.addParam("p");
    cal.addGate(GateKind::PrepZ, {0});
    cal.addGate(GateKind::H, {0});

    ModuleId main = prog.addModule("main");
    Module &m = prog.module(main);
    QubitId q = m.addLocal("q");
    m.addGate(GateKind::MeasZ, {q});
    m.addCall(callee, {q});      // callee preps first: fine
    m.addGate(GateKind::H, {q}); // callee left it prepared: fine
    prog.setEntry(main);

    MeasurementDominance dom = MeasurementDominance::analyze(prog);
    ASSERT_TRUE(dom.valid());
    EXPECT_TRUE(dom.clean()) << "violations: " << dom.violations().size();
    EXPECT_FALSE(dom.summary(callee).useBeforePrep[0]);
    EXPECT_EQ(dom.summary(callee).end[0],
              MeasurementDominance::EndState::Prepared);
}

TEST(MeasurementDominance, RepeatedCallMeasuringAndUsingIsFlagged)
{
    // f measures its parameter after using it; "repeat 2 f(q)" makes
    // iteration 2 consume what iteration 1 left measured.
    Program prog;
    ModuleId f = prog.addModule("f");
    Module &fm = prog.module(f);
    fm.addParam("p");
    fm.addGate(GateKind::H, {0});
    fm.addGate(GateKind::MeasZ, {0});

    ModuleId main = prog.addModule("main");
    Module &m = prog.module(main);
    m.addLocal("q");
    m.addCall(f, {0}, 2);
    prog.setEntry(main);

    MeasurementDominance dom = MeasurementDominance::analyze(prog);
    ASSERT_TRUE(dom.valid());
    ASSERT_EQ(dom.violations().size(), 1u);
    EXPECT_TRUE(dom.violations()[0].interprocedural);
}

// --- entanglement groups ---

TEST(EntanglementGroups, TwoQubitGatesUniteOperands)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 4);
    mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
    mod.addGate(GateKind::CNOT, {reg[2], reg[3]});
    prog.setEntry(id);

    EntanglementGroups groups = EntanglementGroups::analyze(prog);
    ASSERT_TRUE(groups.valid());
    EXPECT_TRUE(groups.sameGroup(id, reg[0], reg[1]));
    EXPECT_TRUE(groups.sameGroup(id, reg[2], reg[3]));
    EXPECT_FALSE(groups.sameGroup(id, reg[1], reg[2]));
    EXPECT_EQ(groups.numEntangledGroups(id), 2u);
}

TEST(EntanglementGroups, CalleeConnectsArgumentsThroughItsLocals)
{
    // The callee entangles its two parameters only indirectly, via a
    // local ancilla; the caller's arguments must still end up united.
    Program prog;
    ModuleId callee = prog.addModule("bridge");
    Module &cal = prog.module(callee);
    QubitId p0 = cal.addParam("p0");
    QubitId p1 = cal.addParam("p1");
    QubitId anc = cal.addLocal("anc");
    cal.addGate(GateKind::CNOT, {p0, anc});
    cal.addGate(GateKind::CNOT, {anc, p1});

    ModuleId main = prog.addModule("main");
    Module &m = prog.module(main);
    auto reg = m.addRegister("q", 3);
    m.addCall(callee, {reg[0], reg[2]});
    prog.setEntry(main);

    EntanglementGroups groups = EntanglementGroups::analyze(prog);
    ASSERT_TRUE(groups.valid());
    EXPECT_TRUE(groups.sameGroup(main, reg[0], reg[2]));
    EXPECT_FALSE(groups.sameGroup(main, reg[0], reg[1]));
    EXPECT_EQ(groups.numEntangledGroups(main), 1u);
}

TEST(EntanglementGroups, SingleQubitGatesEntangleNothing)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 3);
    for (QubitId q : reg)
        mod.addGate(GateKind::H, {q});
    prog.setEntry(id);

    EntanglementGroups groups = EntanglementGroups::analyze(prog);
    ASSERT_TRUE(groups.valid());
    EXPECT_EQ(groups.numEntangledGroups(id), 0u);
}

// --- integration: real workloads ---

TEST(DataflowIntegration, ScaledWorkloadsAnalyzeCleanly)
{
    for (const auto &params : workloads::scaledParams()) {
        Program prog = params.build();
        LivenessAnalysis liveness = LivenessAnalysis::analyze(prog);
        EXPECT_TRUE(liveness.valid()) << params.name;
        MeasurementDominance dom = MeasurementDominance::analyze(prog);
        EXPECT_TRUE(dom.valid()) << params.name;
        EXPECT_TRUE(dom.clean())
            << params.name << ": " << dom.violations().size()
            << " dominance violation(s)";
        EntanglementGroups groups = EntanglementGroups::analyze(prog);
        EXPECT_TRUE(groups.valid()) << params.name;
    }
}

} // namespace
