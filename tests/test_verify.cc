/**
 * @file
 * Tests for the static-analysis subsystem: the DiagnosticEngine, the IR
 * verifier, the circuit linter, the coarse-schedule validator, and the
 * frontend / PassManager integration points.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "core/toolflow.hh"
#include "frontend/parser.hh"
#include "frontend/qasm_reader.hh"
#include "passes/pass_manager.hh"
#include "sched/lpfs.hh"
#include "sched/validator.hh"
#include "support/logging.hh"
#include "verify/linter.hh"
#include "verify/verifier.hh"
#include "workloads/workloads.hh"

namespace {

using namespace msq;

// --- DiagnosticEngine ---

TEST(DiagnosticEngine, CollectModeRecordsEverything)
{
    DiagnosticEngine diags;
    diags.error(DiagCode::GateArity, "first");
    diags.error(DiagCode::DuplicateOperand, "second");
    diags.warning(DiagCode::UnusedQubit, "third");
    EXPECT_EQ(diags.numErrors(), 2u);
    EXPECT_EQ(diags.numWarnings(), 1u);
    EXPECT_EQ(diags.numDistinctCodes(), 3u);
    EXPECT_TRUE(diags.has(DiagCode::GateArity));
    EXPECT_FALSE(diags.has(DiagCode::RecursiveCall));
}

TEST(DiagnosticEngine, PanicModeThrowsOnFirstError)
{
    DiagnosticEngine diags(DiagnosticEngine::FailMode::Panic);
    diags.warning(DiagCode::UnusedQubit, "warnings never throw");
    EXPECT_THROW(diags.error(DiagCode::GateArity, "boom"), PanicError);
}

TEST(DiagnosticEngine, FatalModeThrowsOnFirstError)
{
    DiagnosticEngine diags(DiagnosticEngine::FailMode::Fatal);
    EXPECT_THROW(diags.error(DiagCode::GateArity, "boom"), FatalError);
}

TEST(DiagnosticEngine, FormatIncludesCodeAndLocation)
{
    Diagnostic diag{DiagCode::DuplicateOperand, Severity::Error,
                    {"main", 2, 7}, "CNOT touches qubit 0 twice"};
    std::string text = diag.format();
    EXPECT_NE(text.find("V003"), std::string::npos);
    EXPECT_NE(text.find("module main"), std::string::npos);
    EXPECT_NE(text.find("op 2"), std::string::npos);
    EXPECT_NE(text.find("line 7"), std::string::npos);
    EXPECT_NE(text.find("error"), std::string::npos);
}

// --- IR verifier: one bad-input test per diagnostic code ---

TEST(Verifier, FlagsWrongGateArity)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 2);
    mod.addRawOperation(Operation(GateKind::H, {reg[0], reg[1]}));
    prog.setEntry(id);

    DiagnosticEngine diags;
    EXPECT_FALSE(verifyProgram(prog, diags));
    EXPECT_TRUE(diags.has(DiagCode::GateArity));
}

TEST(Verifier, FlagsOperandOutOfRange)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    mod.addLocal("q");
    mod.addRawOperation(Operation(GateKind::X, {42}));
    prog.setEntry(id);

    DiagnosticEngine diags;
    EXPECT_FALSE(verifyProgram(prog, diags));
    EXPECT_TRUE(diags.has(DiagCode::OperandOutOfRange));
}

TEST(Verifier, FlagsDuplicateOperand)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    QubitId q = mod.addLocal("q");
    mod.addRawOperation(Operation(GateKind::CNOT, {q, q}));
    prog.setEntry(id);

    DiagnosticEngine diags;
    EXPECT_FALSE(verifyProgram(prog, diags));
    EXPECT_TRUE(diags.has(DiagCode::DuplicateOperand));
}

TEST(Verifier, FlagsMissingEntry)
{
    Program prog;
    prog.addModule("not_main");

    DiagnosticEngine diags;
    EXPECT_FALSE(verifyProgram(prog, diags));
    EXPECT_TRUE(diags.has(DiagCode::NoEntryModule));
}

TEST(Verifier, FlagsBadCallee)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    prog.module(id).addRawOperation(Operation::makeCall(57, {}));
    prog.setEntry(id);

    DiagnosticEngine diags;
    EXPECT_FALSE(verifyProgram(prog, diags));
    EXPECT_TRUE(diags.has(DiagCode::BadCallee));
}

TEST(Verifier, FlagsCallArityMismatch)
{
    Program prog;
    ModuleId callee = prog.addModule("kernel");
    prog.module(callee).addParam("a");
    prog.module(callee).addParam("b");
    ModuleId entry = prog.addModule("main");
    Module &mod = prog.module(entry);
    QubitId q = mod.addLocal("q");
    mod.addRawOperation(Operation::makeCall(callee, {q}));
    prog.setEntry(entry);

    DiagnosticEngine diags;
    EXPECT_FALSE(verifyProgram(prog, diags));
    EXPECT_TRUE(diags.has(DiagCode::CallArity));
}

TEST(Verifier, FlagsRecursiveCallCycle)
{
    Program prog;
    ModuleId a = prog.addModule("a");
    ModuleId b = prog.addModule("b");
    prog.module(a).addRawOperation(Operation::makeCall(b, {}));
    prog.module(b).addRawOperation(Operation::makeCall(a, {}));
    prog.setEntry(a);

    DiagnosticEngine diags;
    EXPECT_FALSE(verifyProgram(prog, diags));
    EXPECT_TRUE(diags.has(DiagCode::RecursiveCall));
}

TEST(Verifier, FlagsSelfRecursion)
{
    Program prog;
    ModuleId a = prog.addModule("a");
    prog.module(a).addRawOperation(Operation::makeCall(a, {}));
    prog.setEntry(a);

    DiagnosticEngine diags;
    EXPECT_FALSE(verifyProgram(prog, diags));
    EXPECT_TRUE(diags.has(DiagCode::RecursiveCall));
}

TEST(Verifier, FlagsZeroRepeatCall)
{
    Program prog;
    ModuleId callee = prog.addModule("kernel");
    ModuleId entry = prog.addModule("main");
    Operation call = Operation::makeCall(callee, {});
    call.repeat = 0;
    prog.module(entry).addRawOperation(std::move(call));
    prog.setEntry(entry);

    DiagnosticEngine diags;
    EXPECT_FALSE(verifyProgram(prog, diags));
    EXPECT_TRUE(diags.has(DiagCode::BadRepeat));
}

TEST(Verifier, FlagsUseAfterMeasure)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    QubitId q = mod.addLocal("q");
    mod.addGate(GateKind::MeasZ, {q});
    mod.addGate(GateKind::H, {q});
    prog.setEntry(id);

    DiagnosticEngine diags;
    EXPECT_FALSE(verifyProgram(prog, diags));
    EXPECT_TRUE(diags.has(DiagCode::UseAfterMeasure));
}

TEST(Verifier, PrepClearsMeasuredState)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    QubitId q = mod.addLocal("q");
    mod.addGate(GateKind::MeasZ, {q});
    mod.addGate(GateKind::PrepZ, {q});
    mod.addGate(GateKind::H, {q});
    mod.addGate(GateKind::MeasZ, {q});
    prog.setEntry(id);

    DiagnosticEngine diags;
    EXPECT_TRUE(verifyProgram(prog, diags));
    EXPECT_FALSE(diags.hasErrors());
}

TEST(Verifier, FlagsMalformedGateWithCallee)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    QubitId q = mod.addLocal("q");
    Operation op(GateKind::X, {q});
    op.callee = 0;
    mod.addRawOperation(std::move(op));
    prog.setEntry(id);

    DiagnosticEngine diags;
    EXPECT_FALSE(verifyProgram(prog, diags));
    EXPECT_TRUE(diags.has(DiagCode::MalformedOperation));
}

TEST(Verifier, WarnsOnAngleOnNonRotation)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    QubitId q = mod.addLocal("q");
    Operation op(GateKind::H, {q}, 0.5);
    mod.addRawOperation(std::move(op));
    prog.setEntry(id);

    DiagnosticEngine diags;
    EXPECT_TRUE(verifyProgram(prog, diags)); // warning, not error
    EXPECT_TRUE(diags.has(DiagCode::AngleOnNonRotation));
    EXPECT_EQ(diags.numWarnings(), 1u);
}

TEST(Verifier, FlagsDuplicateCallArg)
{
    Program prog;
    ModuleId callee = prog.addModule("kernel");
    prog.module(callee).addParam("a");
    prog.module(callee).addParam("b");
    ModuleId entry = prog.addModule("main");
    Module &mod = prog.module(entry);
    QubitId q = mod.addLocal("q");
    mod.addRawOperation(Operation::makeCall(callee, {q, q}));
    prog.setEntry(entry);

    DiagnosticEngine diags;
    EXPECT_FALSE(verifyProgram(prog, diags));
    EXPECT_TRUE(diags.has(DiagCode::DuplicateCallArg));
}

TEST(Verifier, ReportsAllViolationsNotJustTheFirst)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 2);
    mod.addRawOperation(Operation(GateKind::H, {reg[0], reg[1]}));
    mod.addRawOperation(Operation(GateKind::CNOT, {reg[0], reg[0]}));
    mod.addRawOperation(Operation(GateKind::X, {99}));
    prog.setEntry(id);

    DiagnosticEngine diags;
    EXPECT_FALSE(verifyProgram(prog, diags));
    EXPECT_GE(diags.numErrors(), 3u);
    EXPECT_TRUE(diags.has(DiagCode::GateArity));
    EXPECT_TRUE(diags.has(DiagCode::DuplicateOperand));
    EXPECT_TRUE(diags.has(DiagCode::OperandOutOfRange));
}

TEST(Verifier, FatalHelperListsEveryError)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 2);
    mod.addRawOperation(Operation(GateKind::H, {reg[0], reg[1]}));
    mod.addRawOperation(Operation(GateKind::CNOT, {reg[0], reg[0]}));
    prog.setEntry(id);

    try {
        verifyProgramFatal(prog);
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("V001"), std::string::npos);
        EXPECT_NE(what.find("V003"), std::string::npos);
    }
}

// --- Every seed workload must verify (and lint) cleanly ---

TEST(Verifier, AllScaledWorkloadsVerifyCleanly)
{
    for (const auto &spec : workloads::scaledParams()) {
        Program prog = spec.build();
        DiagnosticEngine diags;
        bool ok = verifyProgram(prog, diags);
        EXPECT_TRUE(ok) << spec.name << " failed verification:\n"
                        << diags.formatAll();
        lintProgram(prog, diags); // must not crash; warnings allowed
    }
}

TEST(Verifier, AllPaperWorkloadsVerifyCleanly)
{
    for (const auto &spec : workloads::paperParams()) {
        Program prog = spec.build();
        DiagnosticEngine diags;
        bool ok = verifyProgram(prog, diags);
        EXPECT_TRUE(ok) << spec.name << " failed verification:\n"
                        << diags.formatAll();
    }
}

// --- Circuit linter ---

TEST(Linter, FlagsUnusedQubit)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    QubitId q = mod.addLocal("q");
    mod.addLocal("scratch"); // never used
    mod.addGate(GateKind::H, {q});
    prog.setEntry(id);

    DiagnosticEngine diags;
    EXPECT_EQ(lintProgram(prog, diags), 1u);
    EXPECT_TRUE(diags.has(DiagCode::UnusedQubit));
}

TEST(Linter, FlagsDeadGateAfterTerminalMeasurement)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    QubitId q = mod.addLocal("q");
    mod.addGate(GateKind::MeasZ, {q});
    mod.addGate(GateKind::PrepZ, {q}); // reused (no V009) ...
    mod.addGate(GateKind::H, {q});     // ... but never measured again
    prog.setEntry(id);

    DiagnosticEngine verify_diags;
    EXPECT_TRUE(verifyProgram(prog, verify_diags));

    DiagnosticEngine diags;
    lintProgram(prog, diags);
    EXPECT_TRUE(diags.has(DiagCode::DeadGate));
}

TEST(Linter, FlagsAdjacentInversePairs)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 2);
    mod.addGate(GateKind::T, {reg[0]});
    mod.addGate(GateKind::Tdag, {reg[0]});
    mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
    mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
    mod.addGate(GateKind::Rz, {reg[1]}, 0.5);
    mod.addGate(GateKind::Rz, {reg[1]}, -0.5);
    mod.addGate(GateKind::MeasZ, {reg[0]});
    prog.setEntry(id);

    DiagnosticEngine diags;
    lintProgram(prog, diags);
    size_t inverse_pairs = 0;
    for (const auto &diag : diags.diagnostics())
        if (diag.code == DiagCode::UncancelledInverses)
            ++inverse_pairs;
    EXPECT_EQ(inverse_pairs, 3u);
}

TEST(Linter, DoesNotFlagNonAdjacentOrDifferentOperands)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 2);
    mod.addGate(GateKind::H, {reg[0]});
    mod.addGate(GateKind::H, {reg[1]}); // different operand
    mod.addGate(GateKind::T, {reg[0]});
    mod.addGate(GateKind::H, {reg[0]}); // H..H not adjacent
    prog.setEntry(id);

    DiagnosticEngine diags;
    lintProgram(prog, diags);
    EXPECT_FALSE(diags.has(DiagCode::UncancelledInverses));
}

TEST(Linter, FlagsInversePairSeparatedByCommutingGates)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 2);
    // T/Tdag separated by a gate on an unrelated qubit.
    mod.addGate(GateKind::T, {reg[0]});
    mod.addGate(GateKind::X, {reg[1]});
    mod.addGate(GateKind::Tdag, {reg[0]});
    // CNOT pair separated by a Z-basis gate on the shared control.
    mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
    mod.addGate(GateKind::S, {reg[0]});
    mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
    mod.addGate(GateKind::MeasZ, {reg[0]});
    mod.addGate(GateKind::MeasZ, {reg[1]});
    prog.setEntry(id);

    DiagnosticEngine diags;
    lintProgram(prog, diags);
    size_t inverse_pairs = 0;
    for (const auto &diag : diags.diagnostics())
        if (diag.code == DiagCode::UncancelledInverses)
            ++inverse_pairs;
    EXPECT_EQ(inverse_pairs, 2u);
}

TEST(Linter, DoesNotFlagWhenInterveningGateBlocksCommutation)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 2);
    // H on the shared qubit does not commute with T: no cancellation.
    mod.addGate(GateKind::T, {reg[0]});
    mod.addGate(GateKind::H, {reg[0]});
    mod.addGate(GateKind::Tdag, {reg[0]});
    // X on the control anticommutes with the CNOT's Z-basis control.
    mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
    mod.addGate(GateKind::X, {reg[0]});
    mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
    mod.addGate(GateKind::MeasZ, {reg[0]});
    mod.addGate(GateKind::MeasZ, {reg[1]});
    prog.setEntry(id);

    DiagnosticEngine diags;
    lintProgram(prog, diags);
    EXPECT_FALSE(diags.has(DiagCode::UncancelledInverses));
}

TEST(Linter, FlagsTransitivelyUnusedQubitAcrossCalls)
{
    // L007: main's second qubit only reaches a callee that ignores it.
    Program prog;
    ModuleId callee = prog.addModule("callee");
    Module &cal = prog.module(callee);
    cal.addParam("used");
    cal.addParam("ignored");
    cal.addGate(GateKind::H, {0});
    ModuleId main = prog.addModule("main");
    Module &m = prog.module(main);
    m.addLocal("x");
    m.addLocal("y");
    m.addCall(callee, {0, 1});
    prog.setEntry(main);

    DiagnosticEngine diags;
    lintProgram(prog, diags);
    EXPECT_TRUE(diags.has(DiagCode::InterprocUnusedQubit));
}

TEST(Linter, FlagsInterproceduralUseAfterMeasure)
{
    // L008: the callee leaves its parameter measured, the caller gates
    // it afterwards. V009 cannot see this, the dominance analysis can.
    Program prog;
    ModuleId callee = prog.addModule("measure_it");
    Module &cal = prog.module(callee);
    cal.addParam("p");
    cal.addGate(GateKind::H, {0});
    cal.addGate(GateKind::MeasZ, {0});
    ModuleId main = prog.addModule("main");
    Module &m = prog.module(main);
    QubitId q = m.addLocal("q");
    m.addCall(callee, {q});
    m.addGate(GateKind::H, {q});
    m.addGate(GateKind::MeasZ, {q});
    prog.setEntry(main);

    // The intraprocedural verifier is happy with this program...
    DiagnosticEngine verify_diags;
    EXPECT_TRUE(verifyProgram(prog, verify_diags));

    // ...but the interprocedural lint is not.
    DiagnosticEngine diags;
    lintProgram(prog, diags);
    EXPECT_TRUE(diags.has(DiagCode::InterprocUseAfterMeasure));
}

TEST(Linter, CleanInterproceduralProgramHasNoInterprocLints)
{
    Program prog;
    ModuleId callee = prog.addModule("kernel");
    Module &cal = prog.module(callee);
    cal.addParam("p");
    cal.addGate(GateKind::H, {0});
    ModuleId main = prog.addModule("main");
    Module &m = prog.module(main);
    QubitId q = m.addLocal("q");
    m.addCall(callee, {q});
    m.addGate(GateKind::MeasZ, {q});
    prog.setEntry(main);

    DiagnosticEngine diags;
    lintProgram(prog, diags);
    EXPECT_FALSE(diags.has(DiagCode::InterprocUnusedQubit));
    EXPECT_FALSE(diags.has(DiagCode::InterprocUseAfterMeasure));
}

TEST(Linter, FlagsRotationBelowPrecisionFloor)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    QubitId q = mod.addLocal("q");
    mod.addGate(GateKind::Rz, {q}, 1e-14);
    mod.addGate(GateKind::Rz, {q}, 0.7); // fine
    prog.setEntry(id);

    DiagnosticEngine diags;
    lintProgram(prog, diags);
    size_t below = 0;
    for (const auto &diag : diags.diagnostics())
        if (diag.code == DiagCode::RotationBelowPrecision)
            ++below;
    EXPECT_EQ(below, 1u);
}

TEST(Linter, FlagsNonCoalescableGateKinds)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 8);
    for (QubitId q : reg)
        mod.addGate(GateKind::H, {q});
    mod.addGate(GateKind::T, {reg[0]}); // the only T: can't coalesce
    prog.setEntry(id);

    DiagnosticEngine diags;
    lintProgram(prog, diags);
    EXPECT_TRUE(diags.has(DiagCode::NonCoalescableGate));
}

TEST(Linter, FlagsUnreachableModule)
{
    Program prog;
    ModuleId orphan = prog.addModule("orphan");
    prog.module(orphan).addLocal("q");
    ModuleId entry = prog.addModule("main");
    prog.module(entry).addGate(GateKind::H,
                               {prog.module(entry).addLocal("q")});
    prog.setEntry(entry);

    DiagnosticEngine diags;
    lintProgram(prog, diags);
    EXPECT_TRUE(diags.has(DiagCode::UnreachableModule));
}

// --- Frontend integration ---

TEST(FrontendDiagnostics, CollectsMultipleSemanticErrorsWithLines)
{
    const char *source = R"(
module main() {
    qbit q[2];
    H(q[0], q[1]);
    CNOT(q[0], q[0]);
    MeasZ(q[0]);
}
)";
    DiagnosticEngine diags;
    Program prog = parseScaffold(source, &diags);
    EXPECT_TRUE(diags.has(DiagCode::GateArity));
    EXPECT_TRUE(diags.has(DiagCode::DuplicateOperand));
    EXPECT_GE(diags.numDistinctCodes(), 2u);

    // Line numbers carried from the source into the diagnostics.
    for (const auto &diag : diags.diagnostics()) {
        if (diag.code == DiagCode::GateArity) {
            EXPECT_EQ(diag.where.line, 4u);
        } else if (diag.code == DiagCode::DuplicateOperand) {
            EXPECT_EQ(diag.where.line, 5u);
        }
    }

    // The malformed program is still returned for inspection.
    EXPECT_EQ(prog.module(prog.entry()).numOps(), 3u);
}

TEST(FrontendDiagnostics, DefaultPathStillThrowsFatalError)
{
    const char *source = "module main() { qbit q; CNOT(q, q); }";
    EXPECT_THROW(parseScaffold(source), FatalError);
}

TEST(FrontendDiagnostics, OperationsCarrySourceLines)
{
    const char *source = R"(
module main() {
    qbit q[2];
    H(q[0]);
    CNOT(q[0], q[1]);
}
)";
    Program prog = parseScaffold(source);
    const Module &mod = prog.module(prog.entry());
    EXPECT_EQ(mod.op(0).line, 4u);
    EXPECT_EQ(mod.op(1).line, 5u);
}

TEST(FrontendDiagnostics, QasmReaderCollectsSemanticErrors)
{
    const char *text =
        ".module main\n"
        "qbit a\n"
        "qbit b\n"
        "CNOT a a\n"
        "H a b\n"
        ".end\n";
    DiagnosticEngine diags;
    parseHierarchicalQasm(text, &diags);
    EXPECT_TRUE(diags.has(DiagCode::DuplicateOperand));
    EXPECT_TRUE(diags.has(DiagCode::GateArity));
}

// --- Coarse-schedule validator ---

TEST(CoarseValidator, AcceptsCoarseSchedulerOutput)
{
    Program prog = workloads::scaledParams()[0].build();
    ToolflowConfig config;
    config.arch = MultiSimdArch(4);
    config.rotations.sequenceLength = 20;
    ToolflowResult result = Toolflow(config).run(prog);

    DiagnosticEngine diags;
    EXPECT_TRUE(validateProgramSchedule(prog, result.schedule,
                                        config.arch, &diags))
        << diags.formatAll();
}

TEST(CoarseValidator, CatchesTamperedSchedules)
{
    const char *source = R"(
module kernel(qbit a) {
    H(a);
    T(a);
}
module main() {
    qbit q;
    kernel(q);
    MeasZ(q);
}
)";
    Program prog = parseScaffold(source);
    MultiSimdArch arch(2);
    LpfsScheduler leaf;
    CoarseScheduler coarse(arch, leaf, CommMode::None);
    ProgramSchedule psched = coarse.schedule(prog);
    ASSERT_TRUE(validateProgramSchedule(prog, psched, arch));

    // Tamper 1: non-monotone width/length curve.
    ProgramSchedule broken = psched;
    ModuleId kernel = prog.findModule("kernel");
    ASSERT_GE(broken.modules[kernel].dims.size(), 2u);
    broken.modules[kernel].dims.back().length =
        broken.modules[kernel].dims.front().length + 10;
    DiagnosticEngine diags;
    EXPECT_FALSE(validateProgramSchedule(prog, broken, arch, &diags));
    EXPECT_TRUE(diags.has(DiagCode::CoarseDimsNotMonotone));

    // Tamper 2: reachable module marked unanalyzed.
    broken = psched;
    broken.modules[kernel] = ModuleScheduleInfo{};
    diags.clear();
    EXPECT_FALSE(validateProgramSchedule(prog, broken, arch, &diags));
    EXPECT_TRUE(diags.has(DiagCode::CoarseNotAnalyzed));

    // Tamper 3: blackbox wider than the machine.
    broken = psched;
    broken.modules[kernel].dims.back().width = arch.k + 1;
    diags.clear();
    EXPECT_FALSE(validateProgramSchedule(prog, broken, arch, &diags));
    EXPECT_TRUE(diags.has(DiagCode::CoarseWidthExceedsK));

    // Default mode panics like the leaf validator.
    EXPECT_THROW(validateProgramSchedule(prog, broken, arch), PanicError);

    // Tamper 4: leaf flag flipped on a leaf module (C002).
    broken = psched;
    broken.modules[kernel].leaf = !broken.modules[kernel].leaf;
    diags.clear();
    EXPECT_FALSE(validateProgramSchedule(prog, broken, arch, &diags));
    EXPECT_TRUE(diags.has(DiagCode::CoarseLeafMismatch));

    // Tamper 5: analyzed module stripped of its dimensions (C003).
    broken = psched;
    broken.modules[kernel].dims.clear();
    diags.clear();
    EXPECT_FALSE(validateProgramSchedule(prog, broken, arch, &diags));
    EXPECT_TRUE(diags.has(DiagCode::CoarseNoDims));

    // Tamper 6: program total disagrees with the entry module (C006).
    broken = psched;
    broken.totalCycles += 7;
    diags.clear();
    EXPECT_FALSE(validateProgramSchedule(prog, broken, arch, &diags));
    EXPECT_TRUE(diags.has(DiagCode::CoarseTotalMismatch));
}

TEST(CoarseValidator, LargeKnownGoodScheduleStaysClean)
{
    // The biggest scaled workload, end-to-end through the toolflow,
    // must replay through every C-code check without a single finding.
    Program prog = workloads::scaledParams().back().build();
    ToolflowConfig config;
    config.arch = MultiSimdArch(4);
    config.rotations.sequenceLength = 20;
    ToolflowResult result = Toolflow(config).run(prog);

    DiagnosticEngine diags;
    EXPECT_TRUE(validateProgramSchedule(prog, result.schedule,
                                        config.arch, &diags))
        << diags.formatAll();
    EXPECT_EQ(diags.numErrors(), 0u);
}

// --- PassManager integration ---

/** A deliberately buggy pass: rewrites the entry module's first gate to
 * a CNOT with a duplicated operand, bypassing the checked builders. */
class CorruptingPass : public Pass
{
  public:
    const char *name() const override { return "corrupt-ir"; }

    void
    run(Program &prog) override
    {
        Module &mod = prog.module(prog.entry());
        std::vector<Operation> ops = mod.ops();
        ops.front() = Operation(GateKind::CNOT, {0, 0});
        mod.setOps(std::move(ops));
    }
};

TEST(PassManagerVerify, CatchesPassThatCorruptsIr)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 2);
    mod.addGate(GateKind::H, {reg[0]});
    prog.setEntry(id);

    PassManager pm;
    pm.setVerifyAfterPasses(true);
    pm.add(std::make_unique<CorruptingPass>());
    try {
        pm.run(prog);
        FAIL() << "expected PanicError";
    } catch (const PanicError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("corrupt-ir"), std::string::npos);
        EXPECT_NE(what.find("V003"), std::string::npos);
    }
}

TEST(PassManagerVerify, CleanPassesRunUnderVerification)
{
    Program prog;
    ModuleId id = prog.addModule("main");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 2);
    mod.addGate(GateKind::H, {reg[0]});
    mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
    prog.setEntry(id);

    PassManager clean;
    clean.setVerifyAfterPasses(true);
    EXPECT_NO_THROW(clean.run(prog));
}

TEST(PassManagerVerify, EnvironmentVariableEnablesIt)
{
    ASSERT_EQ(setenv("MSQ_VERIFY_AFTER_PASSES", "1", 1), 0);
    PassManager on;
    EXPECT_TRUE(on.verifiesAfterPasses());
    ASSERT_EQ(setenv("MSQ_VERIFY_AFTER_PASSES", "0", 1), 0);
    PassManager off;
    EXPECT_FALSE(off.verifiesAfterPasses());
    ASSERT_EQ(unsetenv("MSQ_VERIFY_AFTER_PASSES"), 0);
    PassManager unset;
    EXPECT_FALSE(unset.verifiesAfterPasses());
}

} // namespace
