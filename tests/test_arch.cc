/**
 * @file
 * Tests for the architecture model: Multi-SIMD configuration, locations,
 * moves, timesteps and the LeafSchedule container.
 */

#include <gtest/gtest.h>

#include "arch/location.hh"
#include "arch/multi_simd.hh"
#include "arch/schedule.hh"
#include "support/logging.hh"

namespace {

using namespace msq;

TEST(MultiSimdArch, Defaults)
{
    MultiSimdArch arch;
    EXPECT_EQ(arch.k, 4u);
    EXPECT_EQ(arch.d, unbounded);
    EXPECT_EQ(arch.localMemCapacity, 0u);
    arch.validate();
}

TEST(MultiSimdArch, ValidateRejectsZeroK)
{
    MultiSimdArch arch(0);
    EXPECT_THROW(arch.validate(), FatalError);
}

TEST(MultiSimdArch, ValidateRejectsZeroD)
{
    MultiSimdArch arch(2, 0);
    EXPECT_THROW(arch.validate(), FatalError);
}

TEST(MultiSimdArch, Describe)
{
    EXPECT_EQ(MultiSimdArch(4).describe(), "Multi-SIMD(4,inf)");
    EXPECT_EQ(MultiSimdArch(2, 128).describe(), "Multi-SIMD(2,128)");
    EXPECT_EQ(MultiSimdArch(4, unbounded, 32).describe(),
              "Multi-SIMD(4,inf)+local(32)");
    EXPECT_EQ(MultiSimdArch(4, unbounded, unbounded).describe(),
              "Multi-SIMD(4,inf)+local(inf)");
}

TEST(MultiSimdArch, CostConstants)
{
    EXPECT_EQ(MultiSimdArch::gateCycles, 1u);
    EXPECT_EQ(MultiSimdArch::teleportCycles, 4u);
    EXPECT_EQ(MultiSimdArch::localMoveCycles, 1u);
    EXPECT_EQ(MultiSimdArch::naiveCyclesPerGate, 5u);
}

TEST(CommMode, Names)
{
    EXPECT_STREQ(commModeName(CommMode::None), "none");
    EXPECT_STREQ(commModeName(CommMode::Global), "global");
    EXPECT_STREQ(commModeName(CommMode::GlobalWithLocalMem),
                 "global+local");
}

TEST(Location, EqualityIgnoresRegionForGlobal)
{
    Location g1 = Location::global();
    Location g2 = Location::global();
    g2.region = 7; // irrelevant
    EXPECT_EQ(g1, g2);
    EXPECT_NE(Location::inRegion(1), Location::inRegion(2));
    EXPECT_NE(Location::inRegion(1), Location::inLocalMem(1));
    EXPECT_EQ(Location::inLocalMem(3), Location::inLocalMem(3));
}

TEST(Location, Describe)
{
    EXPECT_EQ(Location::global().describe(), "mem");
    EXPECT_EQ(Location::inRegion(2).describe(), "r2");
    EXPECT_EQ(Location::inLocalMem(2).describe(), "r2.local");
}

TEST(Move, LocalityClassification)
{
    Move to_local{0, Location::inRegion(1), Location::inLocalMem(1), true};
    EXPECT_TRUE(to_local.isLocal());
    Move from_local{0, Location::inLocalMem(1), Location::inRegion(1),
                    true};
    EXPECT_TRUE(from_local.isLocal());
    Move cross{0, Location::inLocalMem(1), Location::inRegion(2), true};
    EXPECT_FALSE(cross.isLocal());
    Move teleport{0, Location::global(), Location::inRegion(0), true};
    EXPECT_FALSE(teleport.isLocal());
    Move region_to_region{0, Location::inRegion(0), Location::inRegion(1),
                          true};
    EXPECT_FALSE(region_to_region.isLocal());
}

TEST(Timestep, MovePhaseCosts)
{
    Timestep step;
    step.regions.resize(2);
    EXPECT_EQ(step.movePhaseCycles(), 0u);

    // Masked teleport: free.
    step.moves.push_back(
        {0, Location::global(), Location::inRegion(0), false});
    EXPECT_EQ(step.movePhaseCycles(), 0u);

    // Local move: one cycle.
    step.moves.push_back(
        {1, Location::inRegion(0), Location::inLocalMem(0), false});
    EXPECT_EQ(step.movePhaseCycles(), 1u);

    // Any blocking teleport: full four cycles.
    step.moves.push_back(
        {2, Location::inRegion(1), Location::global(), true});
    EXPECT_EQ(step.movePhaseCycles(), 4u);
}

TEST(Timestep, ActiveRegions)
{
    Timestep step;
    step.regions.resize(3);
    EXPECT_EQ(step.activeRegions(), 0u);
    step.regions[1].ops.push_back(0);
    step.regions[2].ops.push_back(1);
    EXPECT_EQ(step.activeRegions(), 2u);
}

TEST(LeafSchedule, Accounting)
{
    Module mod("m");
    auto reg = mod.addRegister("q", 2);
    mod.addGate(GateKind::H, {reg[0]});
    mod.addGate(GateKind::H, {reg[1]});
    mod.addGate(GateKind::CNOT, {reg[0], reg[1]});

    LeafSchedule sched(mod, 2);
    Timestep &s0 = sched.appendStep();
    s0.regions[0].kind = GateKind::H;
    s0.regions[0].ops = {0, 1};
    Timestep &s1 = sched.appendStep();
    s1.regions[1].kind = GateKind::CNOT;
    s1.regions[1].ops = {2};
    s1.moves.push_back(
        {reg[1], Location::inRegion(0), Location::inRegion(1), true});
    s1.moves.push_back(
        {reg[0], Location::inRegion(0), Location::inLocalMem(0), false});

    EXPECT_EQ(sched.computeTimesteps(), 2u);
    EXPECT_EQ(sched.scheduledOps(), 3u);
    EXPECT_EQ(sched.width(), 1u);
    EXPECT_EQ(sched.teleportMoves(), 1u);
    EXPECT_EQ(sched.localMoves(), 1u);
    // cycles: (1 + 0) + (1 + 4)
    EXPECT_EQ(sched.totalCycles(), 6u);
}

} // namespace
