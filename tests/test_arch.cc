/**
 * @file
 * Tests for the architecture model: Multi-SIMD configuration, locations,
 * moves, timesteps and the LeafSchedule container.
 */

#include <gtest/gtest.h>

#include <vector>

#include "arch/location.hh"
#include "arch/multi_simd.hh"
#include "arch/schedule.hh"
#include "support/logging.hh"

namespace {

using namespace msq;

TEST(MultiSimdArch, Defaults)
{
    MultiSimdArch arch;
    EXPECT_EQ(arch.k, 4u);
    EXPECT_EQ(arch.d, unbounded);
    EXPECT_EQ(arch.localMemCapacity, 0u);
    arch.validate();
}

TEST(MultiSimdArch, ValidateRejectsZeroK)
{
    MultiSimdArch arch(0);
    EXPECT_THROW(arch.validate(), FatalError);
}

TEST(MultiSimdArch, ValidateRejectsZeroD)
{
    MultiSimdArch arch(2, 0);
    EXPECT_THROW(arch.validate(), FatalError);
}

// A 0-bandwidth EPR channel can never service a teleport; it used to be
// silently treated as "one phase" deep inside the cost model. It is now
// rejected up front as a configuration error.
TEST(MultiSimdArch, ValidateRejectsZeroEprBandwidth)
{
    MultiSimdArch arch = MultiSimdArch(2).withEprBandwidth(0);
    EXPECT_THROW(arch.validate(), FatalError);
}

TEST(MultiSimdArch, Describe)
{
    EXPECT_EQ(MultiSimdArch(4).describe(), "Multi-SIMD(4,inf)");
    EXPECT_EQ(MultiSimdArch(2, 128).describe(), "Multi-SIMD(2,128)");
    EXPECT_EQ(MultiSimdArch(4, unbounded, 32).describe(),
              "Multi-SIMD(4,inf)+local(32)");
    EXPECT_EQ(MultiSimdArch(4, unbounded, unbounded).describe(),
              "Multi-SIMD(4,inf)+local(inf)");
}

TEST(MultiSimdArch, CostConstants)
{
    EXPECT_EQ(MultiSimdArch::gateCycles, 1u);
    EXPECT_EQ(MultiSimdArch::teleportCycles, 4u);
    EXPECT_EQ(MultiSimdArch::localMoveCycles, 1u);
    EXPECT_EQ(MultiSimdArch::naiveCyclesPerGate, 5u);
}

TEST(CommMode, Names)
{
    EXPECT_STREQ(commModeName(CommMode::None), "none");
    EXPECT_STREQ(commModeName(CommMode::Global), "global");
    EXPECT_STREQ(commModeName(CommMode::GlobalWithLocalMem),
                 "global+local");
}

TEST(Location, EqualityComparesMemoryBankCore)
{
    // Global-memory locations carry the core index of the bank they
    // denote (DESIGN.md §16): same bank compares equal, different banks
    // differ. On the flat machine only bank 0 is ever constructed, so
    // this refinement changes nothing there.
    EXPECT_EQ(Location::global(), Location::global());
    EXPECT_EQ(Location::global(), Location::inMemory(0));
    EXPECT_NE(Location::inMemory(0), Location::inMemory(7));
    EXPECT_EQ(Location::inMemory(3), Location::inMemory(3));
    EXPECT_NE(Location::inRegion(1), Location::inRegion(2));
    EXPECT_NE(Location::inRegion(1), Location::inLocalMem(1));
    EXPECT_EQ(Location::inLocalMem(3), Location::inLocalMem(3));
}

TEST(Location, Describe)
{
    EXPECT_EQ(Location::global().describe(), "mem");
    EXPECT_EQ(Location::inMemory(0).describe(), "mem");
    EXPECT_EQ(Location::inMemory(2).describe(), "mem2");
    EXPECT_EQ(Location::inRegion(2).describe(), "r2");
    EXPECT_EQ(Location::inLocalMem(2).describe(), "r2.local");
}

TEST(Move, LocalityClassification)
{
    Move to_local{0, Location::inRegion(1), Location::inLocalMem(1), true};
    EXPECT_TRUE(to_local.isLocal());
    Move from_local{0, Location::inLocalMem(1), Location::inRegion(1),
                    true};
    EXPECT_TRUE(from_local.isLocal());
    Move cross{0, Location::inLocalMem(1), Location::inRegion(2), true};
    EXPECT_FALSE(cross.isLocal());
    Move teleport{0, Location::global(), Location::inRegion(0), true};
    EXPECT_FALSE(teleport.isLocal());
    Move region_to_region{0, Location::inRegion(0), Location::inRegion(1),
                          true};
    EXPECT_FALSE(region_to_region.isLocal());
}

TEST(MovePhase, Costs)
{
    std::vector<Move> moves;
    auto cycles = [&] {
        return movePhaseCycles(moves.data(),
                               moves.data() + moves.size());
    };
    EXPECT_EQ(cycles(), 0u);

    // Masked teleport: free.
    moves.push_back({0, Location::global(), Location::inRegion(0), false});
    EXPECT_EQ(cycles(), 0u);

    // Local move: one cycle.
    moves.push_back(
        {1, Location::inRegion(0), Location::inLocalMem(0), false});
    EXPECT_EQ(cycles(), 1u);

    // Any blocking teleport: full four cycles.
    moves.push_back({2, Location::inRegion(1), Location::global(), true});
    EXPECT_EQ(cycles(), 4u);
}

TEST(MovePhase, PanicsOnZeroEprBandwidth)
{
    std::vector<Move> moves;
    moves.push_back({0, Location::global(), Location::inRegion(0), true});
    EXPECT_THROW(movePhaseCycles(moves.data(),
                                 moves.data() + moves.size(), 0),
                 PanicError);
}

TEST(TimestepView, ActiveRegions)
{
    Module mod("m");
    auto reg = mod.addRegister("q", 2);
    mod.addGate(GateKind::H, {reg[0]});
    mod.addGate(GateKind::T, {reg[1]});

    ScheduleBuilder builder(mod, 3);
    builder.beginStep();
    builder.endStep();
    builder.beginStep();
    builder.slot(1).kind = GateKind::H;
    builder.slot(1).ops.push_back(0);
    builder.slot(2).kind = GateKind::T;
    builder.slot(2).ops.push_back(1);
    builder.endStep();
    LeafSchedule sched = builder.finish();

    EXPECT_EQ(sched.step(0).activeRegions(), 0u);
    EXPECT_EQ(sched.step(1).activeRegions(), 2u);
    EXPECT_FALSE(sched.step(1).regionActive(0));
    EXPECT_TRUE(sched.step(1).regionActive(1));
    EXPECT_TRUE(sched.step(1).regionActive(2));
}

TEST(LeafSchedule, Accounting)
{
    Module mod("m");
    auto reg = mod.addRegister("q", 2);
    mod.addGate(GateKind::H, {reg[0]});
    mod.addGate(GateKind::H, {reg[1]});
    mod.addGate(GateKind::CNOT, {reg[0], reg[1]});

    ScheduleBuilder builder(mod, 2);
    builder.beginStep();
    builder.slot(0).kind = GateKind::H;
    builder.slot(0).ops = {0, 1};
    builder.endStep();
    builder.beginStep();
    builder.slot(1).kind = GateKind::CNOT;
    builder.slot(1).ops = {2};
    builder.endStep();
    LeafSchedule sched = builder.finish();
    sched.appendMove(
        1, {reg[1], Location::inRegion(0), Location::inRegion(1), true});
    sched.appendMove(1, {reg[0], Location::inRegion(0),
                         Location::inLocalMem(0), false});

    EXPECT_EQ(sched.computeTimesteps(), 2u);
    EXPECT_EQ(sched.scheduledOps(), 3u);
    EXPECT_EQ(sched.width(), 1u);
    EXPECT_EQ(sched.teleportMoves(), 1u);
    EXPECT_EQ(sched.localMoves(), 1u);
    // cycles: (1 + 0) + (1 + 4)
    EXPECT_EQ(sched.totalCycles(), 6u);
}

} // namespace
