/**
 * @file
 * Semantic tests for the CTQG reversible-arithmetic generators: circuits
 * are run on basis states through a classical reversible simulator and
 * compared against ordinary integer arithmetic, including parameterized
 * sweeps over operand values and register widths.
 */

#include <gtest/gtest.h>

#include "ctqg/arith.hh"
#include "ctqg/logic.hh"
#include "support/rng.hh"
#include "reversible_sim.hh"

namespace {

using namespace msq;
using namespace msq::ctqg;
using test::readRegister;
using test::simulateReversible;
using test::writeRegister;

struct AdderFixture
{
    Module mod{"m"};
    Register a, b, scratch;
    QubitId carry = 0, carry_out = 0, flag = 0;

    explicit AdderFixture(unsigned width)
    {
        a = mod.addRegister("a", width);
        b = mod.addRegister("b", width);
        scratch = mod.addRegister("s", width);
        carry = mod.addLocal("carry");
        carry_out = mod.addLocal("cout");
        flag = mod.addLocal("flag");
    }

    std::vector<bool>
    run(uint64_t va, uint64_t vb)
    {
        std::vector<bool> state(mod.numQubits(), false);
        writeRegister(state, a, va);
        writeRegister(state, b, vb);
        return simulateReversible(mod, state);
    }
};

class CuccaroAddSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, uint64_t>>
{};

TEST_P(CuccaroAddSweep, AddsModulo2N)
{
    auto [width, seed] = GetParam();
    AdderFixture fx(width);
    cuccaroAdd(fx.mod, fx.a, fx.b, fx.carry);

    SplitMix64 rng(seed);
    uint64_t mask = width >= 64 ? ~uint64_t{0}
                                : ((uint64_t{1} << width) - 1);
    for (int trial = 0; trial < 20; ++trial) {
        uint64_t va = rng.next() & mask;
        uint64_t vb = rng.next() & mask;
        auto state = fx.run(va, vb);
        EXPECT_EQ(readRegister(state, fx.b), (va + vb) & mask)
            << va << " + " << vb << " width " << width;
        // a unchanged, ancilla restored.
        EXPECT_EQ(readRegister(state, fx.a), va);
        EXPECT_FALSE(state[fx.carry]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, CuccaroAddSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u, 16u, 32u),
                       ::testing::Values(uint64_t{11}, uint64_t{97})));

TEST(CuccaroAdd, CarryOut)
{
    AdderFixture fx(4);
    cuccaroAdd(fx.mod, fx.a, fx.b, fx.carry, fx.carry_out);
    auto state = fx.run(12, 7); // 19 = 16 + 3
    EXPECT_EQ(readRegister(state, fx.b), 3u);
    EXPECT_TRUE(state[fx.carry_out]);

    auto state2 = fx.run(3, 7); // no carry
    EXPECT_EQ(readRegister(state2, fx.b), 10u);
    EXPECT_FALSE(state2[fx.carry_out]);
}

TEST(CuccaroSub, SubtractsModulo2N)
{
    AdderFixture fx(6);
    cuccaroSub(fx.mod, fx.a, fx.b, fx.carry);
    SplitMix64 rng(5);
    for (int trial = 0; trial < 30; ++trial) {
        uint64_t va = rng.nextBelow(64);
        uint64_t vb = rng.nextBelow(64);
        auto state = fx.run(va, vb);
        EXPECT_EQ(readRegister(state, fx.b), (vb - va) & 63u)
            << vb << " - " << va;
        EXPECT_EQ(readRegister(state, fx.a), va);
    }
}

TEST(AddConst, AddsConstantAndClearsScratch)
{
    AdderFixture fx(8);
    addConst(fx.mod, 57, fx.b, fx.scratch, fx.carry);
    auto state = fx.run(0, 100);
    EXPECT_EQ(readRegister(state, fx.b), (100u + 57u) & 255u);
    EXPECT_EQ(readRegister(state, fx.scratch), 0u);
}

TEST(CompareLess, FlagsStrictlyLess)
{
    AdderFixture fx(5);
    compareLess(fx.mod, fx.a, fx.b, fx.flag, fx.scratch, fx.carry);
    for (uint64_t va : {0u, 3u, 15u, 16u, 31u}) {
        for (uint64_t vb : {0u, 3u, 15u, 16u, 31u}) {
            auto state = fx.run(va, vb);
            EXPECT_EQ(state[fx.flag], va < vb) << va << " < " << vb;
            // Inputs and scratch restored.
            EXPECT_EQ(readRegister(state, fx.a), va);
            EXPECT_EQ(readRegister(state, fx.b), vb);
            EXPECT_EQ(readRegister(state, fx.scratch), 0u);
        }
    }
}

TEST(ControlledAdd, AddsOnlyWhenControlSet)
{
    Module mod("m");
    auto a = mod.addRegister("a", 6);
    auto b = mod.addRegister("b", 6);
    auto scratch = mod.addRegister("s", 6);
    QubitId carry = mod.addLocal("carry");
    QubitId ctl = mod.addLocal("ctl");
    controlledAdd(mod, ctl, a, b, scratch, carry);

    for (bool on : {false, true}) {
        std::vector<bool> state(mod.numQubits(), false);
        writeRegister(state, a, 21);
        writeRegister(state, b, 30);
        state[ctl] = on;
        auto out = simulateReversible(mod, state);
        EXPECT_EQ(readRegister(out, b), on ? (21u + 30u) & 63u : 30u);
        EXPECT_EQ(readRegister(out, scratch), 0u);
    }
}

TEST(MultiplyAccumulate, ComputesProduct)
{
    Module mod("m");
    auto a = mod.addRegister("a", 4);
    auto b = mod.addRegister("b", 4);
    auto prod = mod.addRegister("p", 8);
    auto scratch = mod.addRegister("s", 8);
    QubitId carry = mod.addLocal("carry");
    multiplyAccumulate(mod, a, b, prod, scratch, carry);

    SplitMix64 rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        uint64_t va = rng.nextBelow(16);
        uint64_t vb = rng.nextBelow(16);
        std::vector<bool> state(mod.numQubits(), false);
        writeRegister(state, a, va);
        writeRegister(state, b, vb);
        auto out = simulateReversible(mod, state);
        EXPECT_EQ(readRegister(out, prod), va * vb) << va << "*" << vb;
        EXPECT_EQ(readRegister(out, scratch), 0u);
    }
}

TEST(Logic, BitwiseXor)
{
    Module mod("m");
    auto a = mod.addRegister("a", 8);
    auto b = mod.addRegister("b", 8);
    bitwiseXor(mod, a, b);
    std::vector<bool> state(mod.numQubits(), false);
    writeRegister(state, a, 0xA5);
    writeRegister(state, b, 0x0F);
    auto out = simulateReversible(mod, state);
    EXPECT_EQ(readRegister(out, b), 0xA5u ^ 0x0Fu);
}

TEST(Logic, BitwiseAndOr)
{
    Module mod("m");
    auto a = mod.addRegister("a", 8);
    auto b = mod.addRegister("b", 8);
    auto and_out = mod.addRegister("ao", 8);
    auto or_out = mod.addRegister("oo", 8);
    bitwiseAnd(mod, a, b, and_out);
    bitwiseOr(mod, a, b, or_out);
    std::vector<bool> state(mod.numQubits(), false);
    writeRegister(state, a, 0x3C);
    writeRegister(state, b, 0x66);
    auto out = simulateReversible(mod, state);
    EXPECT_EQ(readRegister(out, and_out), 0x3Cu & 0x66u);
    EXPECT_EQ(readRegister(out, or_out), 0x3Cu | 0x66u);
}

TEST(Logic, SetConstLoadsValue)
{
    Module mod("m");
    auto reg = mod.addRegister("r", 8);
    setConst(mod, reg, 0xB7);
    std::vector<bool> state(mod.numQubits(), false);
    auto out = simulateReversible(mod, state);
    EXPECT_EQ(readRegister(out, reg), 0xB7u);
}

TEST(Logic, RotlPermutesWires)
{
    Register reg = {10, 11, 12, 13};
    Register rot = rotl(reg, 1);
    // bit i of input appears at position (i+1) mod 4.
    EXPECT_EQ(rot[1], 10u);
    EXPECT_EQ(rot[2], 11u);
    EXPECT_EQ(rot[0], 13u);
    EXPECT_EQ(rotl(reg, 4), reg);
    EXPECT_TRUE(rotl({}, 3).empty());
}

TEST(Logic, Sha1RoundFunctions)
{
    Module mod("m");
    auto x = mod.addRegister("x", 8);
    auto y = mod.addRegister("y", 8);
    auto z = mod.addRegister("z", 8);
    auto ch = mod.addRegister("ch", 8);
    auto maj = mod.addRegister("mj", 8);
    auto par = mod.addRegister("pr", 8);
    chooseFunction(mod, x, y, z, ch);
    majorityFunction(mod, x, y, z, maj);
    parityFunction(mod, x, y, z, par);

    SplitMix64 rng(9);
    for (int trial = 0; trial < 20; ++trial) {
        uint64_t vx = rng.nextBelow(256);
        uint64_t vy = rng.nextBelow(256);
        uint64_t vz = rng.nextBelow(256);
        std::vector<bool> state(mod.numQubits(), false);
        writeRegister(state, x, vx);
        writeRegister(state, y, vy);
        writeRegister(state, z, vz);
        auto out = simulateReversible(mod, state);
        EXPECT_EQ(readRegister(out, ch), (vx & vy) ^ (~vx & vz & 0xFF));
        EXPECT_EQ(readRegister(out, maj),
                  (vx & vy) ^ (vx & vz) ^ (vy & vz));
        EXPECT_EQ(readRegister(out, par), vx ^ vy ^ vz);
        // Inputs restored.
        EXPECT_EQ(readRegister(out, x), vx);
        EXPECT_EQ(readRegister(out, y), vy);
        EXPECT_EQ(readRegister(out, z), vz);
    }
}

class MultiControlledXSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(MultiControlledXSweep, FlipsIffAllControlsSet)
{
    unsigned n = GetParam();
    Module mod("m");
    auto controls = mod.addRegister("c", n);
    QubitId target = mod.addLocal("t");
    auto anc = mod.addRegister("anc", n > 1 ? n - 1 : 1);
    multiControlledX(mod, controls, target, anc);

    // All-ones flips; every single-zero pattern does not.
    std::vector<bool> state(mod.numQubits(), false);
    writeRegister(state, controls, (uint64_t{1} << n) - 1);
    auto out = simulateReversible(mod, state);
    EXPECT_TRUE(out[target]);
    EXPECT_EQ(readRegister(out, anc), 0u) << "ancilla not uncomputed";

    for (unsigned z = 0; z < n; ++z) {
        std::vector<bool> st2(mod.numQubits(), false);
        writeRegister(st2, controls,
                      ((uint64_t{1} << n) - 1) & ~(uint64_t{1} << z));
        auto out2 = simulateReversible(mod, st2);
        EXPECT_FALSE(out2[target]) << "zero control " << z;
        EXPECT_EQ(readRegister(out2, anc), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Controls, MultiControlledXSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 9u));

TEST(MultiControlledX, ZeroControlsIsX)
{
    Module mod("m");
    QubitId target = mod.addLocal("t");
    multiControlledX(mod, {}, target, {});
    std::vector<bool> state(1, false);
    EXPECT_TRUE(simulateReversible(mod, state)[target]);
}

TEST(MultiControlledX, InsufficientAncillaFatal)
{
    Module mod("m");
    auto controls = mod.addRegister("c", 5);
    QubitId target = mod.addLocal("t");
    auto anc = mod.addRegister("anc", 2); // needs 4
    EXPECT_THROW(multiControlledX(mod, controls, target, anc), FatalError);
}

TEST(Arith, WidthMismatchFatal)
{
    Module mod("m");
    auto a = mod.addRegister("a", 4);
    auto b = mod.addRegister("b", 5);
    QubitId carry = mod.addLocal("carry");
    EXPECT_THROW(cuccaroAdd(mod, a, b, carry), FatalError);
}

} // namespace
