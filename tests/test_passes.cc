/**
 * @file
 * Tests for the decomposition and flattening passes: the Fig. 4 Toffoli
 * expansion, rotation sequences (determinism, length scaling, outlining),
 * FTh-driven flattening, and pass-manager plumbing.
 */

#include <gtest/gtest.h>

#include "analysis/resource_estimator.hh"
#include "passes/decompose_toffoli.hh"
#include "passes/flatten.hh"
#include "passes/pass_manager.hh"
#include "passes/rotation_decomposer.hh"
#include "support/logging.hh"

namespace {

using namespace msq;

// --- Toffoli decomposition ---

TEST(DecomposeToffoli, Fig4Sequence)
{
    // The exact 16-op expansion shown in paper Fig. 4.
    std::vector<Operation> out;
    DecomposeToffoliPass::expandToffoli(0, 1, 2, out);
    ASSERT_EQ(out.size(), 16u);
    using GK = GateKind;
    const GK expected_kinds[16] = {
        GK::H,    GK::CNOT, GK::Tdag, GK::CNOT, GK::T,    GK::CNOT,
        GK::Tdag, GK::CNOT, GK::Tdag, GK::T,    GK::CNOT, GK::H,
        GK::Tdag, GK::CNOT, GK::T,    GK::S,
    };
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(out[i].kind, expected_kinds[i]) << "op " << i;
    // Spot-check operands: first CNOT is (b, c), last S is on b.
    EXPECT_EQ(out[1].operands, (std::vector<QubitId>{1, 2}));
    EXPECT_EQ(out[15].operands, (std::vector<QubitId>{1}));
}

TEST(DecomposeToffoli, RewritesModules)
{
    Program prog;
    ModuleId id = prog.addModule("m");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 3);
    mod.addGate(GateKind::Toffoli, {reg[0], reg[1], reg[2]});
    mod.addGate(GateKind::Swap, {reg[0], reg[1]});
    mod.addGate(GateKind::H, {reg[2]});
    prog.setEntry(id);

    DecomposeToffoliPass pass;
    pass.run(prog);
    EXPECT_EQ(mod.numOps(), 16u + 3u + 1u);
    for (const auto &op : mod.ops())
        EXPECT_TRUE(isPrimitiveGate(op.kind))
            << gateName(op.kind);
}

TEST(DecomposeToffoli, FredkinExpands)
{
    std::vector<Operation> out;
    DecomposeToffoliPass::expandFredkin(0, 1, 2, out);
    EXPECT_EQ(out.size(), 18u); // CNOT + 16 + CNOT
    EXPECT_EQ(out.front().kind, GateKind::CNOT);
    EXPECT_EQ(out.back().kind, GateKind::CNOT);
}

TEST(DecomposeToffoli, LeavesPrimitivesAlone)
{
    Program prog;
    ModuleId id = prog.addModule("m");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 2);
    mod.addGate(GateKind::CNOT, {reg[0], reg[1]});
    prog.setEntry(id);
    DecomposeToffoliPass().run(prog);
    EXPECT_EQ(mod.numOps(), 1u);
}

// --- Rotation decomposition ---

TEST(RotationDecomposer, SequenceIsDeterministic)
{
    auto s1 = RotationDecomposerPass::sequenceForAngle(GateKind::Rz, 0.7,
                                                       100);
    auto s2 = RotationDecomposerPass::sequenceForAngle(GateKind::Rz, 0.7,
                                                       100);
    EXPECT_EQ(s1, s2);
    auto s3 = RotationDecomposerPass::sequenceForAngle(GateKind::Rz, 0.8,
                                                       100);
    EXPECT_NE(s1, s3);
    auto s4 = RotationDecomposerPass::sequenceForAngle(GateKind::Rx, 0.7,
                                                       100);
    EXPECT_NE(s1, s4);
}

TEST(RotationDecomposer, NoAdjacentCancellation)
{
    auto seq = RotationDecomposerPass::sequenceForAngle(GateKind::Ry,
                                                        1.234, 2000);
    ASSERT_EQ(seq.size(), 2000u);
    for (size_t i = 1; i < seq.size(); ++i) {
        GateKind prev = seq[i - 1];
        GateKind cur = seq[i];
        bool cancels =
            (prev == cur && (cur == GateKind::H || cur == GateKind::X ||
                             cur == GateKind::Z)) ||
            (prev == GateKind::T && cur == GateKind::Tdag) ||
            (prev == GateKind::Tdag && cur == GateKind::T) ||
            (prev == GateKind::S && cur == GateKind::Sdag) ||
            (prev == GateKind::Sdag && cur == GateKind::S);
        EXPECT_FALSE(cancels) << "position " << i;
    }
}

TEST(RotationDecomposer, LengthScalesWithPrecision)
{
    RotationDecomposerPass::Config loose;
    loose.epsilon = 1e-4;
    RotationDecomposerPass::Config tight;
    tight.epsilon = 1e-14;
    EXPECT_LT(RotationDecomposerPass(loose).derivedLength(),
              RotationDecomposerPass(tight).derivedLength());
    // "Several thousand operations" ballpark at high precision (§4.2).
    EXPECT_GT(RotationDecomposerPass(tight).derivedLength(), 300u);
}

TEST(RotationDecomposer, ExplicitLengthOverrides)
{
    RotationDecomposerPass::Config config;
    config.sequenceLength = 42;
    EXPECT_EQ(RotationDecomposerPass(config).derivedLength(), 42u);
}

TEST(RotationDecomposer, BadEpsilonFatal)
{
    RotationDecomposerPass::Config config;
    config.epsilon = 0.0;
    EXPECT_THROW(
        {
            RotationDecomposerPass pass(config);
            (void)pass;
        },
        FatalError);
}

Program
rotationProgram()
{
    Program prog;
    ModuleId id = prog.addModule("m");
    Module &mod = prog.module(id);
    auto reg = mod.addRegister("q", 2);
    mod.addGate(GateKind::Rz, {reg[0]}, 0.5);
    mod.addGate(GateKind::Rz, {reg[1]}, 0.5);
    mod.addGate(GateKind::Rz, {reg[0]}, 0.25);
    prog.setEntry(id);
    return prog;
}

TEST(RotationDecomposer, InlineModeExpandsInPlace)
{
    Program prog = rotationProgram();
    RotationDecomposerPass::Config config;
    config.sequenceLength = 10;
    RotationDecomposerPass(config).run(prog);
    const Module &mod = prog.module(prog.entry());
    EXPECT_EQ(mod.numOps(), 30u);
    EXPECT_TRUE(mod.isLeaf());
    EXPECT_EQ(prog.numModules(), 1u);
}

TEST(RotationDecomposer, OutlineModeSharesAngleModules)
{
    Program prog = rotationProgram();
    RotationDecomposerPass::Config config;
    config.sequenceLength = 10;
    config.outline = true;
    RotationDecomposerPass(config).run(prog);
    // Two distinct angles -> two outlined modules.
    EXPECT_EQ(prog.numModules(), 3u);
    const Module &mod = prog.module(prog.entry());
    EXPECT_EQ(mod.numOps(), 3u);
    for (const auto &op : mod.ops()) {
        ASSERT_TRUE(op.isCall());
        const Module &callee = prog.module(op.callee);
        EXPECT_EQ(callee.numOps(), 10u);
        EXPECT_TRUE(callee.noInline());
    }
    prog.validate();
}

// --- Flattening ---

Program
threeLevelProgram()
{
    Program prog;
    ModuleId leaf = prog.addModule("leaf");
    {
        Module &mod = prog.module(leaf);
        QubitId q = mod.addParam("q");
        QubitId anc = mod.addLocal("anc");
        mod.addGate(GateKind::H, {q});
        mod.addGate(GateKind::CNOT, {q, anc});
    }
    ModuleId mid = prog.addModule("mid");
    {
        Module &mod = prog.module(mid);
        QubitId q = mod.addParam("q");
        mod.addGate(GateKind::T, {q});
        mod.addCall(leaf, {q}, 3);
    }
    ModuleId top = prog.addModule("top");
    {
        Module &mod = prog.module(top);
        QubitId q = mod.addLocal("q");
        mod.addCall(mid, {q}, 2);
    }
    prog.setEntry(top);
    return prog;
}

TEST(Flatten, BelowThresholdBecomesLeaf)
{
    Program prog = threeLevelProgram();
    FlattenPass(1000).run(prog);
    // Everything is tiny: all modules flatten.
    const Module &top = prog.module(prog.findModule("top"));
    EXPECT_TRUE(top.isLeaf());
    // top = 2 * (1 + 3*2) = 14 gates.
    EXPECT_EQ(top.localGateCount(), 14u);
    prog.validate();
}

TEST(Flatten, AboveThresholdStaysModular)
{
    Program prog = threeLevelProgram();
    FlattenPass(4).run(prog);
    // mid totals 7 gates > 4: stays modular; leaf (2 gates) already leaf.
    const Module &mid = prog.module(prog.findModule("mid"));
    EXPECT_FALSE(mid.isLeaf());
    const Module &top = prog.module(prog.findModule("top"));
    EXPECT_FALSE(top.isLeaf());
}

TEST(Flatten, ThresholdBetweenLevels)
{
    Program prog = threeLevelProgram();
    FlattenPass(10).run(prog);
    // mid totals 7 <= 10 -> flattens into a 7-gate leaf; top totals
    // 14 > 10 -> keeps its calls to the (now-leaf) mid.
    const Module &mid = prog.module(prog.findModule("mid"));
    EXPECT_TRUE(mid.isLeaf());
    EXPECT_EQ(mid.localGateCount(), 7u);
    const Module &top = prog.module(prog.findModule("top"));
    EXPECT_FALSE(top.isLeaf());
    ResourceEstimator res(prog);
    EXPECT_EQ(res.programGates(), 14u);
}

TEST(Flatten, GateCountPreserved)
{
    for (uint64_t threshold : {1u, 5u, 8u, 100u}) {
        Program prog = threeLevelProgram();
        uint64_t before = ResourceEstimator(prog).programGates();
        FlattenPass(threshold).run(prog);
        EXPECT_EQ(ResourceEstimator(prog).programGates(), before)
            << "threshold " << threshold;
    }
}

TEST(Flatten, NoInlineModulesKeptAsCalls)
{
    Program prog = threeLevelProgram();
    prog.module(prog.findModule("leaf")).setNoInline(true);
    FlattenPass(1000).run(prog);
    const Module &mid = prog.module(prog.findModule("mid"));
    EXPECT_FALSE(mid.isLeaf());
    unsigned calls = 0;
    for (const auto &op : mid.ops())
        if (op.isCall())
            ++calls;
    EXPECT_EQ(calls, 1u); // repeat count preserved on the kept call
    prog.validate();
}

TEST(Flatten, InlinedAncillaGetFreshNames)
{
    Program prog = threeLevelProgram();
    FlattenPass(1000).run(prog);
    const Module &top = prog.module(prog.findModule("top"));
    // top had 1 local; inlining adds ancilla per call site.
    EXPECT_GT(top.numQubits(), 1u);
    prog.validate();
}

// --- Pass manager ---

class CountingPass : public Pass
{
  public:
    explicit CountingPass(int &counter) : counter(counter) {}
    const char *name() const override { return "counting"; }
    void run(Program &) override { ++counter; }

  private:
    int &counter;
};

TEST(PassManager, RunsPassesInOrder)
{
    Program prog = threeLevelProgram();
    int count = 0;
    PassManager pm;
    pm.add(std::make_unique<CountingPass>(count));
    pm.add(std::make_unique<CountingPass>(count));
    pm.run(prog);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(pm.numPasses(), 2u);
}

} // namespace
