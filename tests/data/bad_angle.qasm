.module main
    qbit q
    Rz(abc) q
.end
