.module sub q
    T q
.end
.module main
    qbit x
    call[xFOO] sub x
.end
